"""Replay parity: all three loops must be bit-identical to each other.

The engine carries three replay loops (see the module docstring of
``repro.sim.engine``): the optimized scalar fast path that ships by
default, the straightforward reference loop it was derived from
(``Engine(slow_path=True)`` / ``REPRO_SLOW_PATH=1``), and the
vectorized SoA loop (``Engine(vector_path=True)`` /
``REPRO_VECTOR_PATH=1``, see ``repro.sim.soatrace``).  Every
optimization is required to be a *bit-identical* transformation, so
these tests compare complete ``RunResult.to_dict()`` payloads -- every
node's every stats bucket, miss-class counter and clock -- across
every architecture, two workloads with different locality profiles,
and two memory-pressure regimes, and additionally pin the serialized
store bytes (what ``RunStore.put`` persists and hashes by spec) to be
identical regardless of which loop produced the result.

If one of these fails after an engine change, an optimized path has
diverged from the model: fix the fast/vector path (or fold the change
into ``_shared_ref``, which all loops share), never the reference
loop.
"""

import hashlib
import json

import pytest

from repro.harness.experiment import ARCHITECTURES, get_workload, scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.soatrace import vector_available

SCALE = 0.1
#: fft is RAC/home-friendly, radix is eviction- and relocation-heavy;
#: 0.3 vs 0.9 pressure flips the page cache between roomy and thrashing.
APPS = ("fft", "radix")
PRESSURES = (0.3, 0.9)

CELLS = [(app, arch, pressure)
         for app in APPS for arch in ARCHITECTURES for pressure in PRESSURES]


def run_cell(app, arch, pressure, *, config_kwargs=None, **engine_kwargs):
    wl = get_workload(app, SCALE)
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=pressure,
                       **(config_kwargs or {}))
    engine = Engine(wl, scaled_policy(arch), config=cfg, **engine_kwargs)
    return engine.run().to_dict()


class TestFastPathParity:
    @pytest.mark.parametrize("app,arch,pressure", CELLS)
    def test_fast_matches_reference(self, app, arch, pressure):
        fast = run_cell(app, arch, pressure)
        reference = run_cell(app, arch, pressure, slow_path=True)
        assert fast == reference

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_page_memo_matches_reference(self, arch):
        """The opt-in page memo must also be invisible in the results.

        radix at high pressure exercises every memo invalidator:
        faults, S-COMA (un)mappings, evictions, relocations, migration.
        """
        memo = run_cell("radix", arch, 0.9, page_memo=True)
        reference = run_cell("radix", arch, 0.9, slow_path=True)
        assert memo == reference

    @pytest.mark.parametrize("arch", ("CCNUMA", "ASCOMA"))
    def test_associative_l1_parity(self, arch):
        """l1_ways=2 disables the inlined direct-mapped tag compare, so
        this covers the lookup()-based branch of both loops."""
        cfg = {"l1_ways": 2}
        fast = run_cell("fft", arch, 0.7, config_kwargs=cfg)
        reference = run_cell("fft", arch, 0.7, config_kwargs=cfg,
                             slow_path=True)
        assert fast == reference


def _content_hash(payload: dict) -> str:
    """Hash of the canonical store serialization of a result payload."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


class TestThreeWayParity:
    """The differential matrix: reference x fast x vector, every arch.

    When the compiled kernel is unavailable the vector engine degrades
    to the fast path, which keeps the assertions valid but vacuous for
    the third loop -- so the availability probe is asserted separately
    (and the CI vector leg runs where a compiler is guaranteed).
    """

    @pytest.mark.parametrize("app,arch,pressure", CELLS)
    def test_three_way_matrix(self, app, arch, pressure):
        reference = run_cell(app, arch, pressure, slow_path=True)
        fast = run_cell(app, arch, pressure)
        vector = run_cell(app, arch, pressure, vector_path=True)
        assert fast == reference
        assert vector == reference
        # Byte-level, not just structural: the store persists JSON, so
        # the hash of the canonical serialization is what a spec-keyed
        # store entry would carry.  One hash means any loop's result
        # can service any other loop's cache hit.
        hashes = {_content_hash(r) for r in (reference, fast, vector)}
        assert len(hashes) == 1

    def test_vector_env_selection_matches(self, monkeypatch):
        """REPRO_VECTOR_PATH=1 must take the same code path as the
        ctor argument and produce the same bytes."""
        explicit = run_cell("fft", "ASCOMA", 0.9, vector_path=True)
        monkeypatch.setenv("REPRO_VECTOR_PATH", "1")
        via_env = run_cell("fft", "ASCOMA", 0.9)
        assert _content_hash(explicit) == _content_hash(via_env)

    def test_store_bytes_identical_across_paths(self, tmp_path, monkeypatch):
        """End-to-end store check: the exact bytes RunStore writes must
        not depend on the loop that produced the result."""
        from repro.runtime.spec import RunSpec
        from repro.runtime.store import RunStore

        spec = RunSpec(app="fft", arch="ASCOMA", pressure=0.9, scale=SCALE)
        blobs = []
        for env in ({}, {"REPRO_SLOW_PATH": "1"},
                    {"REPRO_VECTOR_PATH": "1"}):
            for var in ("REPRO_SLOW_PATH", "REPRO_VECTOR_PATH"):
                monkeypatch.delenv(var, raising=False)
            for var, value in env.items():
                monkeypatch.setenv(var, value)
            store = RunStore(tmp_path / (next(iter(env), "fast")))
            path = store.put(spec, spec.execute())
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1] == blobs[2]

    def test_kernel_availability_probe(self):
        """vector_available() must answer without raising; on CI's
        vector leg a compiler is present, so the probe must succeed
        there (asserted via the env contract below)."""
        import os
        available = vector_available()
        assert isinstance(available, bool)
        if os.environ.get("REPRO_EXPECT_VECTOR", "") == "1":
            assert available


class TestSlowPathSelection:
    def _engine(self, **kwargs):
        wl = get_workload("fft", SCALE)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5)
        return Engine(wl, scaled_policy("ASCOMA"), config=cfg, **kwargs)

    def test_default_is_fast_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLOW_PATH", raising=False)
        assert self._engine().slow_path is False

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("yes", True), ("0", False), ("", False),
    ])
    def test_env_var_selects_reference(self, monkeypatch, value, expected):
        monkeypatch.delenv("REPRO_VECTOR_PATH", raising=False)
        monkeypatch.setenv("REPRO_SLOW_PATH", value)
        assert self._engine().slow_path is expected

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_PATH", "1")
        assert self._engine(slow_path=False).slow_path is False


class TestVectorPathSelection:
    """REPRO_VECTOR_PATH / vector_path selection + conflict handling,
    mirroring TestSlowPathSelection for the third loop."""

    def _engine(self, **kwargs):
        wl = get_workload("fft", SCALE)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5)
        return Engine(wl, scaled_policy("ASCOMA"), config=cfg, **kwargs)

    def test_default_is_fast_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTOR_PATH", raising=False)
        assert self._engine().vector_path is False

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("yes", True), ("0", False), ("", False),
    ])
    def test_env_var_selects_vector(self, monkeypatch, value, expected):
        monkeypatch.delenv("REPRO_SLOW_PATH", raising=False)
        monkeypatch.setenv("REPRO_VECTOR_PATH", value)
        assert self._engine().vector_path is expected

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_PATH", "1")
        assert self._engine(vector_path=False).vector_path is False

    def test_explicit_ctor_conflict_raises(self):
        with pytest.raises(ValueError, match="conflicting path selections"):
            self._engine(slow_path=True, vector_path=True)

    def test_env_conflict_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_PATH", "1")
        monkeypatch.setenv("REPRO_VECTOR_PATH", "1")
        with pytest.raises(ValueError, match="conflicting path selections"):
            self._engine()

    def test_explicit_vector_beats_slow_env(self, monkeypatch):
        """ctor > env: an explicit vector_path=True silences an
        environment-selected reference loop instead of raising."""
        monkeypatch.setenv("REPRO_SLOW_PATH", "1")
        engine = self._engine(vector_path=True)
        assert engine.vector_path is True
        assert engine.slow_path is False

    def test_explicit_slow_beats_vector_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_PATH", "1")
        engine = self._engine(slow_path=True)
        assert engine.slow_path is True
        assert engine.vector_path is False
