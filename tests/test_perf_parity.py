"""Replay parity: the fast path must be bit-identical to the reference.

The engine carries two replay loops (see the module docstring of
``repro.sim.engine``): the optimized fast path that ships by default,
and the straightforward reference loop it was derived from, selectable
via ``Engine(slow_path=True)`` or ``REPRO_SLOW_PATH=1``.  Every
optimization is required to be a *bit-identical* transformation, so
these tests compare complete ``RunResult.to_dict()`` payloads -- every
node's every stats bucket, miss-class counter and clock -- across
every architecture, two workloads with different locality profiles,
and two memory-pressure regimes.

If one of these fails after an engine change, the fast path has
diverged from the model: fix the fast path (or fold the change into
``_shared_ref``, which both loops share), never the reference loop.
"""

import pytest

from repro.harness.experiment import ARCHITECTURES, get_workload, scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine

SCALE = 0.1
#: fft is RAC/home-friendly, radix is eviction- and relocation-heavy;
#: 0.3 vs 0.9 pressure flips the page cache between roomy and thrashing.
APPS = ("fft", "radix")
PRESSURES = (0.3, 0.9)

CELLS = [(app, arch, pressure)
         for app in APPS for arch in ARCHITECTURES for pressure in PRESSURES]


def run_cell(app, arch, pressure, *, config_kwargs=None, **engine_kwargs):
    wl = get_workload(app, SCALE)
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=pressure,
                       **(config_kwargs or {}))
    engine = Engine(wl, scaled_policy(arch), config=cfg, **engine_kwargs)
    return engine.run().to_dict()


class TestFastPathParity:
    @pytest.mark.parametrize("app,arch,pressure", CELLS)
    def test_fast_matches_reference(self, app, arch, pressure):
        fast = run_cell(app, arch, pressure)
        reference = run_cell(app, arch, pressure, slow_path=True)
        assert fast == reference

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_page_memo_matches_reference(self, arch):
        """The opt-in page memo must also be invisible in the results.

        radix at high pressure exercises every memo invalidator:
        faults, S-COMA (un)mappings, evictions, relocations, migration.
        """
        memo = run_cell("radix", arch, 0.9, page_memo=True)
        reference = run_cell("radix", arch, 0.9, slow_path=True)
        assert memo == reference

    @pytest.mark.parametrize("arch", ("CCNUMA", "ASCOMA"))
    def test_associative_l1_parity(self, arch):
        """l1_ways=2 disables the inlined direct-mapped tag compare, so
        this covers the lookup()-based branch of both loops."""
        cfg = {"l1_ways": 2}
        fast = run_cell("fft", arch, 0.7, config_kwargs=cfg)
        reference = run_cell("fft", arch, 0.7, config_kwargs=cfg,
                             slow_path=True)
        assert fast == reference


class TestSlowPathSelection:
    def _engine(self, **kwargs):
        wl = get_workload("fft", SCALE)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5)
        return Engine(wl, scaled_policy("ASCOMA"), config=cfg, **kwargs)

    def test_default_is_fast_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLOW_PATH", raising=False)
        assert self._engine().slow_path is False

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("yes", True), ("0", False), ("", False),
    ])
    def test_env_var_selects_reference(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_SLOW_PATH", value)
        assert self._engine().slow_path is expected

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_PATH", "1")
        assert self._engine(slow_path=False).slow_path is False
