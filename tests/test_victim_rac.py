"""Tests for the victim-fill RAC mode (VC-NUMA's actual hardware)."""

import pytest

from repro.core import CCNUMAPolicy
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine, simulate
from repro.sim.trace import TraceBuilder, WorkloadTraces
from tests.test_coherence_model import audit_machine

LPP = 128


def cfg(mode="victim", entries=4):
    return SystemConfig(n_nodes=2, memory_pressure=0.5,
                        model_contention=False, rac_fill_policy=mode,
                        rac_entries=entries)


def conflict_workload(rounds=6):
    """Node 1 ping-pongs two L1-conflicting remote lines (pages 0 and 2,
    both homed at node 0): a victim cache's best case."""
    b0 = TraceBuilder()
    for page in range(3):
        b0.read(page * LPP)
    b0.barrier(0)
    b1 = TraceBuilder()
    for page in range(3, 6):
        b1.read(page * LPP)
    b1.barrier(0)
    for _ in range(rounds):
        b1.read(0)          # page 0, L1 set 0
        b1.read(2 * LPP)    # page 2, L1 set 0: evicts line 0 to the RAC
    b0.barrier(1)
    b1.barrier(1)
    return WorkloadTraces("conflict", [b0.build(), b1.build()],
                          home_pages_per_node=3, total_shared_pages=6)


class TestConfig:
    def test_policy_validated(self):
        with pytest.raises(ValueError):
            SystemConfig(rac_fill_policy="prefetch")

    def test_default_is_fetch(self):
        assert SystemConfig().rac_fill_policy == "fetch"


class TestVictimFill:
    def test_victim_rac_catches_conflict_ping_pong(self):
        result = simulate(conflict_workload(), CCNUMAPolicy(), cfg())
        s = result.node_stats[1]
        # After the first round, each evicted line is re-read from the RAC.
        assert s.RAC >= 8

    def test_fetch_rac_useless_on_ping_pong(self):
        # Chunks 0 and 64 alternate through the single fetch-fill slot.
        result = simulate(conflict_workload(), CCNUMAPolicy(),
                          cfg(mode="fetch", entries=1))
        assert result.node_stats[1].RAC == 0

    def test_no_fill_on_fetch_in_victim_mode(self):
        # A streaming pattern (consecutive lines, no L1 evictions of
        # remote lines) gets zero RAC hits under victim fill.
        b0 = TraceBuilder()
        b0.read(0)
        b0.barrier(0)
        b1 = TraceBuilder()
        b1.read(LPP)
        b1.barrier(0)
        for line in range(4):
            b1.read(line)
        b0.barrier(1)
        b1.barrier(1)
        wl = WorkloadTraces("stream", [b0.build(), b1.build()], 1, 2)
        result = simulate(wl, CCNUMAPolicy(), cfg())
        assert result.node_stats[1].RAC == 0
        # Every line went remote (first cold, rest chunk refetches).
        assert result.node_stats[1].remote_misses() == 4

    def test_only_remote_lines_enter_victim_rac(self):
        # Home-page L1 victims must not pollute the victim RAC.
        b0 = TraceBuilder()
        b0.read(0)
        b0.barrier(0)
        for _ in range(4):
            b0.read(0)
            b0.read(2 * LPP * 0 + 256)  # line 256 = page 2... remote? no:
        b0.barrier(1)
        b1 = TraceBuilder()
        b1.read(LPP)
        b1.barrier(0)
        b1.barrier(1)
        wl = WorkloadTraces("homeonly", [b0.build(), b1.build()],
                            home_pages_per_node=3, total_shared_pages=6)
        engine = Engine(wl, CCNUMAPolicy(), cfg())
        result = engine.run()
        # Node 0's conflicting lines are all home pages: RAC stays empty.
        assert all(c == -1 for c in engine.machine.nodes[0].rac.chunks)
        assert result.node_stats[0].RAC == 0


class TestCoherence:
    def test_invalidation_reaches_victim_rac(self):
        wl = conflict_workload(rounds=4)
        engine = Engine(wl, CCNUMAPolicy(), cfg())
        engine.run()
        audit_machine(engine)

    def test_flush_page_clears_victim_lines(self):
        from repro.coherence.directory import Directory
        from repro.sim.node import Node
        config = cfg()
        amap = config.address_map()
        node = Node(0, config, amap, Directory(2, amap.chunks_per_page),
                    CCNUMAPolicy(), cache_frames=0, total_frames=10)
        node.page_table.map_ccnuma(5)
        node.rac.fill(amap.line_id(5, 3))  # victim line of page 5
        node.flush_page(5)
        assert not node.rac.contains(amap.line_id(5, 3))
