"""Trace sampling: determinism, sweep semantics, identity, memory.

The sampling contract has four legs, each pinned here:

* **Determinism** — the same ``(rate, pages, seed, unit)`` selects the
  same references in any process, so sampled trace-cache artifacts are
  content-addressable (one test shells out to prove cross-process
  stability of the sampled content hash).
* **Structure** — barriers stay aligned across nodes, the first-touch
  prologue survives verbatim, kept barriers renumber densely, and the
  spatial sampler only ever keeps whole pages.
* **Identity** — sampling parameters enter the spec hash and the
  trace-cache key, so sampled and full runs can never collide in
  either store, while the *unsampled* canonical form is bit-identical
  to what it was before the feature existed.
* **Accuracy & memory** — the committed error-analysis bounds hold,
  and a warm-store rate-10 fetch streams from the ``.soa`` sidecar at
  a fraction of the full trace's heap.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.harness.experiment import get_workload
from repro.runtime import RunSpec, TraceStore, fetch_traces, trace_key, \
    use_trace_store
from repro.runtime.tracecache import clear_trace_memo, sample_from_sidecar
from repro.sim.trace import EV_BARRIER, EV_WRITE
from repro.workloads.sample import (ERROR_ANALYSIS_CONFIGS, ERROR_BOUNDS,
                                    SampleSpec, estimated_metrics,
                                    sample_scale_factor, sample_workload,
                                    sampling_error, trace_memory_bytes)

APP = "fft"
SCALE = 0.25

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestSampleSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SampleSpec(rate=0)
        with pytest.raises(ValueError):
            SampleSpec(pages=0.0)
        with pytest.raises(ValueError):
            SampleSpec(pages=1.5)
        with pytest.raises(ValueError):
            SampleSpec(unit="epoch")

    def test_null_spec_collapses_everywhere(self):
        null = SampleSpec(rate=1, pages=1.0)
        assert null.is_null
        assert null.to_pairs() == ()
        assert SampleSpec.from_any(null) is None
        assert SampleSpec.from_any(None) is None
        assert SampleSpec.from_any({"rate": 1, "pages": 1.0}) is None

    def test_from_any_round_trips_pairs(self):
        spec = SampleSpec(rate=5, pages=0.5, seed=3, unit="visit")
        assert SampleSpec.from_any(spec.to_pairs()) == spec
        assert SampleSpec.from_any(spec.canonical_dict()) == spec

    def test_labels(self):
        assert SampleSpec(rate=4).label() == "~1/4"
        assert SampleSpec(rate=4, unit="visit").label() == "~1/4v"
        assert SampleSpec(pages=0.5).label() == "~p0.5"
        assert SampleSpec().label() == ""


class TestDeterminism:
    @pytest.mark.parametrize("spec", [
        SampleSpec(rate=4),
        SampleSpec(rate=3, unit="visit"),
        SampleSpec(rate=2, unit="ref"),
        SampleSpec(pages=0.5),
        SampleSpec(rate=4, pages=0.5, seed=7),
    ])
    def test_same_spec_same_content(self, spec):
        a = sample_workload(get_workload(APP, SCALE), spec)
        b = sample_workload(get_workload(APP, SCALE), spec)
        assert a.content_hash() == b.content_hash()

    def test_seed_changes_selection(self):
        wl = get_workload(APP, SCALE)
        a = sample_workload(wl, SampleSpec(pages=0.5, seed=0))
        b = sample_workload(wl, SampleSpec(pages=0.5, seed=1))
        assert a.content_hash() != b.content_hash()

    def test_content_hash_stable_across_processes(self):
        """Same seed + rate => identical sampled content hash in a
        fresh interpreter — the property that makes sampled artifacts
        safely shareable through the on-disk trace cache."""
        spec = SampleSpec(rate=4, pages=0.5, seed=9)
        local = sample_workload(get_workload(APP, SCALE), spec)
        code = (
            "from repro.harness.experiment import get_workload\n"
            "from repro.workloads.sample import SampleSpec, sample_workload\n"
            f"wl = get_workload({APP!r}, {SCALE})\n"
            f"spec = SampleSpec(rate=4, pages=0.5, seed=9)\n"
            "print(sample_workload(wl, spec).content_hash())\n")
        out = subprocess.run([sys.executable, "-c", code],
                             capture_output=True, text=True, check=True,
                             env={"PYTHONPATH": SRC, "PATH": "/usr/bin"})
        assert out.stdout.strip() == local.content_hash()


class TestSweepSemantics:
    def test_null_spec_returns_same_object(self):
        wl = get_workload(APP, SCALE)
        assert sample_workload(wl, None) is wl
        assert sample_workload(wl, SampleSpec()) is wl

    def test_barriers_stay_aligned_across_nodes(self):
        sampled = sample_workload(get_workload(APP, SCALE), SampleSpec(rate=4))
        counts = {int(np.count_nonzero(t.kinds == EV_BARRIER))
                  for t in sampled.traces}
        assert len(counts) == 1  # every node sees the same barrier set
        full_counts = {int(np.count_nonzero(t.kinds == EV_BARRIER))
                       for t in get_workload(APP, SCALE).traces}
        assert counts.pop() < full_counts.pop()

    def test_kept_barriers_renumber_densely(self):
        sampled = sample_workload(get_workload(APP, SCALE), SampleSpec(rate=4))
        for t in sampled.traces:
            ids = t.args[t.kinds == EV_BARRIER]
            assert np.array_equal(ids, np.arange(len(ids)))

    def test_prologue_survives_verbatim(self):
        """Epoch 0 (the first-touch prologue) is always kept: the home
        assignment it pins must be identical in sampled and full runs."""
        full = get_workload(APP, SCALE)
        sampled = sample_workload(full, SampleSpec(rate=10))
        for ft, st in zip(full.traces, sampled.traces):
            fbar = int(np.flatnonzero(ft.kinds == EV_BARRIER)[0])
            sbar = int(np.flatnonzero(st.kinds == EV_BARRIER)[0])
            assert np.array_equal(ft.kinds[:fbar], st.kinds[:sbar])
            assert np.array_equal(ft.args[:fbar], st.args[:sbar])

    def test_huge_rate_still_keeps_an_interior_epoch(self):
        sampled = sample_workload(get_workload(APP, SCALE),
                                  SampleSpec(rate=10 ** 6))
        # more than the prologue survived: refs exist after barrier 0
        t = sampled.traces[0]
        first_bar = int(np.flatnonzero(t.kinds == EV_BARRIER)[0])
        assert np.count_nonzero(t.kinds[first_bar:] <= EV_WRITE) > 0

    def test_spatial_keeps_only_whole_pages(self, amap):
        full = get_workload(APP, SCALE)
        spec = SampleSpec(pages=0.5)
        sampled = sample_workload(full, spec)
        assert sampled.home_pages_per_node < full.home_pages_per_node
        lpp = amap.lines_per_page
        full_pages = set()
        kept_pages = set()
        for ft, st in zip(full.traces, sampled.traces):
            full_pages.update((ft.args[ft.kinds <= EV_WRITE] // lpp).tolist())
            kept_pages.update((st.args[st.kinds <= EV_WRITE] // lpp).tolist())
        assert kept_pages < full_pages  # strict subset, whole pages only

    def test_measured_scale_factor_recorded(self):
        sampled = sample_workload(get_workload(APP, SCALE), SampleSpec(rate=4))
        entry = sampled.params["sample"]
        assert entry["full_refs"] > entry["kept_refs"] > 0
        factor = sample_scale_factor(sampled)
        assert factor == pytest.approx(entry["full_refs"]
                                       / entry["kept_refs"])
        assert sample_scale_factor(get_workload(APP, SCALE)) == 1.0


class TestIdentity:
    def test_sample_enters_spec_hash(self):
        base = RunSpec.make(APP, "ASCOMA", 0.7, SCALE)
        sampled = RunSpec.make(APP, "ASCOMA", 0.7, SCALE,
                               sample=SampleSpec(rate=4))
        assert base.spec_hash() != sampled.spec_hash()
        assert "~1/4" in sampled.label()

    def test_null_sample_keeps_presampling_hash(self):
        """Every spelling of 'no sampling' must leave the canonical
        JSON — and therefore every pre-existing store key — unchanged."""
        base = RunSpec.make(APP, "ASCOMA", 0.7, SCALE)
        null = RunSpec.make(APP, "ASCOMA", 0.7, SCALE, sample=SampleSpec())
        assert "sample" not in base.to_dict()
        assert base.canonical_json() == null.canonical_json()

    def test_spec_round_trips_through_dict(self):
        spec = RunSpec.make(APP, "ASCOMA", 0.7, SCALE,
                            sample=SampleSpec(rate=4, pages=0.5))
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.sample_spec() == SampleSpec(rate=4, pages=0.5)

    def test_sample_enters_trace_key(self):
        base = trace_key(APP, SCALE)
        sampled = trace_key(APP, SCALE, sample=SampleSpec(rate=4))
        other = trace_key(APP, SCALE, sample=SampleSpec(rate=4, seed=1))
        assert len({base, sampled, other}) == 3
        assert trace_key(APP, SCALE, sample=SampleSpec()) == base


class TestStreamingAndMemory:
    def test_sidecar_path_matches_in_memory_sampling(self, tmp_path):
        """The memmap-streaming reduction must be bit-identical to
        sampling the heap-resident workload — content hash, page pool
        and the recorded measured scale factor."""
        store = TraceStore(tmp_path / "traces")
        spec = SampleSpec(rate=4)
        with use_trace_store(store):
            full = fetch_traces(APP, SCALE)
            inmem = sample_workload(full, spec)
            side = sample_from_sidecar(store.path_for(APP, SCALE), spec)
        assert side is not None
        assert side.content_hash() == inmem.content_hash()
        assert side.home_pages_per_node == inmem.home_pages_per_node
        assert (side.params["sample"]["scale_factor"]
                == inmem.params["sample"]["scale_factor"])

    def test_warm_store_fetch_streams_and_caches(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        spec = SampleSpec(rate=4)
        with use_trace_store(store):
            fetch_traces(APP, SCALE)          # warm the full artifact
            clear_trace_memo()
            first = fetch_traces(APP, SCALE, sample=spec)
            assert store.path_for(APP, SCALE, sample=spec).exists()
            clear_trace_memo()
            second = fetch_traces(APP, SCALE, sample=spec)
        assert first.content_hash() == second.content_hash()

    def test_rate10_memory_fraction(self, tmp_path):
        """The acceptance bound: a warm-store rate-10 sampled fetch
        holds well under 1/8th of the full trace's replay heap."""
        store = TraceStore(tmp_path / "traces")
        with use_trace_store(store):
            full = fetch_traces(APP, SCALE)
            full_bytes = trace_memory_bytes(full)
            clear_trace_memo()
            sampled = fetch_traces(APP, SCALE, sample=SampleSpec(rate=10))
        assert trace_memory_bytes(sampled) <= full_bytes / 8

    def test_sampled_spec_executes(self):
        result = RunSpec.make(APP, "SCOMA", 0.9, SCALE,
                              sample=SampleSpec(rate=4)).execute()
        assert result.execution_time() > 0


class TestErrorBounds:
    def test_committed_config_within_bounds(self):
        """Re-measure the cheapest committed error-analysis config and
        hold it to the committed bounds (the CI leg runs the full
        report via ``repro sample-report``)."""
        cfg = ERROR_ANALYSIS_CONFIGS[0]
        report = sampling_error(**cfg)
        for metric, bound in ERROR_BOUNDS.items():
            assert report["errors"][metric] <= bound, (
                f"{metric} error {report['errors'][metric]:.3f}"
                f" exceeds committed bound {bound} on {cfg}")

    def test_estimator_uses_measured_factor(self):
        cfg = ERROR_ANALYSIS_CONFIGS[0]
        report = sampling_error(**cfg)
        nominal = cfg["rate"] / cfg["pages"]
        assert report["scale_factor"] != pytest.approx(nominal, rel=1e-6)

    def test_estimated_metrics_factor_override(self):
        class _Agg:
            K_OVERHD = 100
            relocations = 2
            migrations = 1

        class _Result:
            def aggregate(self):
                return _Agg()

            def execution_time(self):
                return 1000

        est = estimated_metrics(_Result(), SampleSpec(rate=4), factor=3.0)
        assert est == {"cycles": 3000.0, "toverhead": 300.0, "remaps": 9.0}
        nominal = estimated_metrics(_Result(), SampleSpec(rate=4))
        assert nominal["cycles"] == 4000.0
