"""Unit tests for the pageout daemon's second-chance scan and thrash signal."""


from repro.kernel.costs import KernelCosts
from repro.kernel.freelist import FreePagePool
from repro.kernel.pageout import PageoutDaemon
from repro.kernel.vm import PageTable


class Harness:
    """Minimal stand-in for a node: ref bits + eviction wiring."""

    def __init__(self, cache_frames=4, total_frames=100):
        self.page_table = PageTable(32)
        self.pool = FreePagePool(cache_frames, total_frames,
                                 free_min_frac=0.02, free_target_frac=0.04)
        self.ref_bits: dict[int, bool] = {}
        self.evicted: list[int] = []
        self.daemon = PageoutDaemon(
            self.page_table, self.pool, KernelCosts(),
            reference_bit=lambda p: self.ref_bits.get(p, False),
            clear_reference_bit=lambda p: self.ref_bits.__setitem__(p, False),
            evict=self._evict, base_interval=1000)

    def map_page(self, page, referenced=True):
        assert self.pool.try_allocate()
        self.page_table.map_scoma(page)
        self.ref_bits[page] = referenced

    def _evict(self, page):
        self.page_table.unmap_scoma(page, to_ccnuma=True)
        self.pool.release()
        self.evicted.append(page)


class TestSecondChance:
    def test_evicts_unreferenced_pages(self):
        h = Harness()
        for p in range(4):
            h.map_page(p, referenced=False)
        result = h.daemon.run(now=0)
        assert result.reclaimed >= 1
        assert not result.thrashing
        assert h.evicted  # cold pages went first

    def test_referenced_pages_survive_one_run(self):
        h = Harness()
        for p in range(4):
            h.map_page(p, referenced=True)
        result = h.daemon.run(now=0)
        assert result.reclaimed == 0
        assert result.thrashing
        assert h.evicted == []

    def test_reference_bits_cleared_by_scan(self):
        h = Harness()
        for p in range(4):
            h.map_page(p, referenced=True)
        h.daemon.run(now=0)
        assert all(not h.ref_bits[p] for p in range(4))

    def test_second_run_evicts_if_not_retouched(self):
        h = Harness()
        for p in range(4):
            h.map_page(p, referenced=True)
        h.daemon.run(now=0)
        result = h.daemon.run(now=h.daemon.interval)
        assert result.reclaimed >= 1

    def test_retouched_pages_survive_second_run(self):
        h = Harness()
        for p in range(4):
            h.map_page(p, referenced=True)
        h.daemon.run(now=0)
        for p in range(4):
            h.ref_bits[p] = True  # application touched them again
        result = h.daemon.run(now=h.daemon.interval)
        assert result.reclaimed == 0 and result.thrashing

    def test_stops_at_target(self):
        h = Harness(cache_frames=10)
        for p in range(10):
            h.map_page(p, referenced=False)
        result = h.daemon.run(now=0)
        # Deficit was free_target (pool empty); no more than needed evicted.
        assert result.reclaimed == result.target
        assert len(h.evicted) == result.target


class TestScheduling:
    def test_due_requires_low_pool(self):
        h = Harness()
        assert not h.daemon.due(now=0)  # pool full
        for p in range(4):
            h.map_page(p)
        assert h.daemon.due(now=0)

    def test_rate_limited(self):
        h = Harness()
        for p in range(4):
            h.map_page(p)
        h.daemon.run(now=0)
        assert not h.daemon.due(now=h.daemon.interval - 1)
        assert h.daemon.due(now=h.daemon.interval)

    def test_stretch_interval(self):
        h = Harness()
        h.daemon.stretch_interval(2.0)
        assert h.daemon.interval == 2000
        h.daemon.stretch_interval(2.0, cap=3000)
        assert h.daemon.interval == 3000

    def test_stretch_interval_cap_below_base_wins(self):
        # Regression: the base_interval floor used to be applied after
        # the cap, so a cap below base_interval was silently ignored
        # and the interval stayed at 1000 instead of clamping to 500.
        h = Harness()
        assert h.daemon.base_interval == 1000
        h.daemon.stretch_interval(2.0, cap=500)
        assert h.daemon.interval == 500

    def test_stretch_interval_cap_is_absolute_ceiling(self):
        h = Harness()
        h.daemon.stretch_interval(8.0, cap=3000)
        assert h.daemon.interval == 3000
        # A later stretch with a tighter cap pulls the interval down.
        h.daemon.stretch_interval(2.0, cap=1500)
        assert h.daemon.interval == 1500

    def test_reset_interval(self):
        h = Harness()
        h.daemon.stretch_interval(4.0)
        h.daemon.reset_interval()
        assert h.daemon.interval == h.daemon.base_interval

    def test_run_cost_scales_with_scan(self):
        h = Harness()
        for p in range(4):
            h.map_page(p, referenced=True)
        result = h.daemon.run(now=0)
        assert result.cost == KernelCosts().daemon_run_cost(result.scanned)

    def test_counters(self):
        h = Harness()
        for p in range(4):
            h.map_page(p, referenced=True)
        h.daemon.run(now=0)
        assert h.daemon.runs == 1
        assert h.daemon.thrash_events == 1
