"""Tests for repro.obs: sink, spans, kind-filtered backoff telemetry.

The acceptance tests at the bottom pin the two ISSUE-level claims: an
observed serial sweep's per-cell spans account for the measured
wall-clock (within 10%), and the em3d high-pressure cell reproduces
the paper's Section 3 backoff narrative (threshold raises + interval
stretches) in the exported time series.
"""

import time

import pytest

from repro.obs import (BackoffTelemetry, ObsSink, SpanRecorder,
                       backoff_specs, export_records, read_records,
                       render_summary, render_timeline, resolve_run_path,
                       summarize, use_obs, worker_recorder)
from repro.runtime import RunSpec, execute
from repro.sim.events import EV_BARRIER, EV_DAEMON, EV_EVICT, EventBus

SCALE = 0.1


# ----------------------------------------------------------------------
class TestEventBusKinds:
    def test_filtered_observer_sees_only_its_kinds(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=(EV_DAEMON,))
        bus.publish(EV_DAEMON, 0, -1, thrashing=True)
        bus.publish(EV_EVICT, 1, 7)
        assert [e.kind for e in seen] == [EV_DAEMON]

    def test_filtered_subscription_keeps_fast_paths_on(self):
        """The whole point: a kind-filtered observer must not appear in
        ``observers`` — the engine's inlined fast path and the hot
        publish-site guards key off that list."""
        bus = EventBus()
        bus.subscribe(lambda e: None, kinds=(EV_DAEMON, EV_BARRIER))
        assert bus.observers == []
        assert bus.watching(EV_DAEMON)
        assert bus.watching(EV_BARRIER)
        assert not bus.watching(EV_EVICT)

    def test_full_observer_watches_everything(self):
        bus = EventBus()
        bus.subscribe(lambda e: None)
        assert bus.watching(EV_EVICT) and bus.watching(EV_DAEMON)

    def test_unsubscribe_clears_emptied_kinds(self):
        bus = EventBus()
        obs = lambda e: None  # noqa: E731
        bus.subscribe(obs, kinds=(EV_DAEMON, EV_BARRIER))
        bus.unsubscribe(obs)
        assert bus.kind_observers == {}
        assert not bus.watching(EV_DAEMON)

    def test_both_observer_classes_receive_one_event(self):
        bus = EventBus()
        full, filtered = [], []
        bus.subscribe(full.append)
        bus.subscribe(filtered.append, kinds=(EV_DAEMON,))
        bus.clock = 42
        bus.publish(EV_DAEMON, 3, -1, thrashing=False)
        assert len(full) == len(filtered) == 1
        assert full[0] is filtered[0]
        assert filtered[0].clock == 42 and filtered[0].node == 3


# ----------------------------------------------------------------------
class TestSink:
    def test_roundtrip_and_corrupt_tail(self, tmp_path):
        sink = ObsSink(tmp_path, run_id="r1")
        sink.write({"rec": "span", "name": "x", "wall_s": 0.5})
        sink.write({"rec": "event", "name": "hit"})
        sink.close()
        with open(sink.path, "a", encoding="utf-8") as fh:
            fh.write('{"rec": "span", "trunc')  # killed-run tail
        records = read_records(sink.path)
        assert [r["rec"] for r in records] == ["span", "event"]
        assert sink.records_written == 2

    def test_resolve_latest_and_by_id(self, tmp_path):
        ObsSink(tmp_path, run_id="20260101-000000-1").write({"rec": "a"})
        ObsSink(tmp_path, run_id="20260102-000000-1").write({"rec": "b"})
        latest = resolve_run_path(None, tmp_path)
        assert latest.name == "20260102-000000-1.jsonl"
        by_id = resolve_run_path("20260101-000000-1", tmp_path)
        assert read_records(by_id) == [{"rec": "a"}]

    def test_resolve_empty_dir_raises(self, tmp_path):
        with pytest.raises(ValueError, match="--obs"):
            resolve_run_path(None, tmp_path / "nothing")


# ----------------------------------------------------------------------
class TestSpanRecorder:
    def test_span_records_wall_even_on_raise(self):
        obs = worker_recorder()
        with pytest.raises(RuntimeError):
            with obs.span("cell", attempt=0):
                raise RuntimeError("boom")
        (record,) = obs.sink
        assert record["name"] == "cell" and record["wall_s"] >= 0
        assert record["src"] == "worker"

    def test_worker_drain_and_parent_merge(self, tmp_path):
        worker = worker_recorder()
        worker.emit("event", name="hit")
        shipped = worker.drain()
        assert worker.sink == []  # drained
        parent = SpanRecorder(ObsSink(tmp_path, run_id="m"))
        parent.merge(shipped)
        parent.sink.close()
        (record,) = read_records(parent.sink.path)
        assert record["src"] == "worker"  # merge does not re-stamp

    def test_spec_stamped_onto_spans_and_events(self):
        spec = RunSpec("fft", "ASCOMA", 0.5, SCALE)
        obs = worker_recorder()
        with obs.span("simulate", spec=spec):
            pass
        obs.event("hit", spec=spec)
        for record in obs.sink:
            assert record["spec"] == spec.label()
            assert record["spec_hash"] == spec.spec_hash()

    def test_ambient_recorder_scoping(self):
        from repro.obs import get_default_obs
        assert get_default_obs() is None
        obs = worker_recorder()
        with use_obs(obs):
            assert get_default_obs() is obs
        assert get_default_obs() is None


# ----------------------------------------------------------------------
class TestReport:
    def _records(self):
        return [
            {"rec": "span", "name": "cell", "wall_s": 1.0, "spec": "a"},
            {"rec": "span", "name": "cell", "wall_s": 3.0, "spec": "b"},
            {"rec": "event", "name": "hit", "spec": "c"},
            {"rec": "backoff", "spec": "b", "node": 0, "clock": 10,
             "thrashing": True, "threshold": 8, "interval": 100,
             "enabled": True, "threshold_delta": "raise",
             "interval_delta": "stretch", "relocation": None},
            {"rec": "phase", "spec": "b", "clock": 5, "barrier": 0},
        ]

    def test_summarize_aggregates(self):
        agg = summarize(self._records())
        assert agg["spans"]["cell"] == {"count": 2, "total_s": 4.0,
                                        "max_s": 3.0}
        assert agg["events"] == {"hit": 1}
        assert agg["cells"] == ["a", "b", "c"]
        assert agg["backoff"]["threshold_raises"] == 1
        assert agg["backoff"]["interval_stretches"] == 1

    def test_render_summary_and_timeline(self):
        text = render_summary(self._records(), run_name="t")
        assert "cell" in text and "1 raise" in text
        assert backoff_specs(self._records()) == ["b"]
        timeline = render_timeline(self._records())
        assert "barrier 0" in timeline
        assert "thr-raise" in timeline and "int-stretch" in timeline

    def test_export_csv_backoff_rows_only(self):
        csv_text = export_records(self._records(), fmt="csv")
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("spec,node,clock")
        assert len(lines) == 2  # header + the one backoff row
        assert "raise" in lines[1] and "stretch" in lines[1]

    def test_export_json_roundtrip(self):
        import json
        assert json.loads(export_records(self._records())) == self._records()


# ----------------------------------------------------------------------
class TestAcceptance:
    def test_observed_sweep_spans_account_for_wallclock(self, tmp_path):
        """ISSUE acceptance: a serial 2-app slice under --obs produces
        JSONL whose per-cell spans sum to within 10% of the measured
        wall-clock, and ``repro obs summary`` renders it."""
        specs = [RunSpec("fft", "ASCOMA", 0.7, SCALE),
                 RunSpec("em3d", "ASCOMA", 0.9, SCALE)]
        sink = ObsSink(tmp_path, run_id="acc")
        t0 = time.perf_counter()
        with use_obs(SpanRecorder(sink)):
            results = execute(specs, store=None, parallel=False)
        wall = time.perf_counter() - t0
        sink.close()
        assert all(hasattr(r, "execution_time") for r in results.values())

        records = read_records(sink.path)
        cell_spans = [r for r in records
                      if r["rec"] == "span" and r["name"] == "cell"]
        assert len(cell_spans) == len(specs)
        accounted = sum(r["wall_s"] for r in cell_spans)
        assert accounted <= wall
        assert accounted >= 0.9 * wall, (
            f"cell spans account for {accounted:.3f}s of {wall:.3f}s "
            f"({accounted / wall:.0%}; >=90% required)")

        text = render_summary(records, run_name="acc")
        assert "cell" in text and "simulate" in text
        assert f"{len(specs)} cell(s)" in text

    def test_em3d_high_pressure_reproduces_backoff_narrative(self):
        """ISSUE acceptance: the em3d@90% ASCOMA cell's exported time
        series shows the Section 3 trajectory — the daemon thrashes,
        raises the relocation threshold and stretches its interval."""
        spec = RunSpec("em3d", "ASCOMA", 0.9, SCALE)
        telemetry = BackoffTelemetry()
        spec.execute(telemetry=telemetry)
        counters = telemetry.counters()
        assert counters["thrash_events"] > 0
        assert counters["threshold_raises"] > 0
        assert counters["interval_stretches"] > 0
        raises = [r for r in telemetry.rows
                  if r.get("threshold_delta") == "raise"]
        stretches = [r for r in telemetry.rows
                     if r.get("interval_delta") == "stretch"]
        assert raises and stretches
        # Raised thresholds are monotonically increasing per node, and
        # the series carries cycle context for plotting.
        node = raises[0]["node"]
        series = telemetry.series(node, "threshold")
        assert series == sorted(series)
        assert all(r["clock"] > 0 for r in raises)
        # The same narrative survives the CSV export path.
        obs = worker_recorder()
        obs.backoff_rows(spec, telemetry.rows)
        csv_text = export_records(obs.sink, fmt="csv")
        assert "raise" in csv_text and "stretch" in csv_text
        assert spec.label() in csv_text

    def test_cached_results_identical_with_and_without_obs(self, tmp_path):
        """Telemetry is a runtime mode: the stored artifact must be
        byte-identical whether or not --obs was on when it was made."""
        from repro.runtime import RunStore
        spec = RunSpec("fft", "ASCOMA", 0.5, SCALE)
        plain_store = RunStore(tmp_path / "plain")
        obs_store = RunStore(tmp_path / "obs")
        execute([spec], store=plain_store, parallel=False)
        with use_obs(worker_recorder()):
            execute([spec], store=obs_store, parallel=False)
        plain = plain_store.path_for(spec).read_text()
        observed = obs_store.path_for(spec).read_text()
        assert plain == observed

    def test_telemetry_attach_detach_leaves_bus_clean(self):
        from repro.sim.config import SystemConfig
        from repro.sim.engine import Engine
        from repro.harness.experiment import get_workload, scaled_policy
        wl = get_workload("fft", SCALE)
        engine = Engine(wl, scaled_policy("ASCOMA"),
                        config=SystemConfig(n_nodes=wl.n_nodes,
                                            memory_pressure=0.7))
        telemetry = BackoffTelemetry().attach(engine)
        bus = engine.machine.events
        assert bus.observers == []  # fast path stays eligible
        telemetry.detach(engine)
        assert bus.kind_observers == {}

    def test_execute_always_detaches_engine_observers(self, monkeypatch):
        """RunSpec.execute unsubscribes telemetry *and* checker itself.

        Long-lived callers (the serve layer runs thousands of cells on
        one retained telemetry object) must not rely on the engine
        being garbage: the run must leave the bus it subscribed to
        clean, success or not.
        """
        from repro.sim.engine import Engine
        captured = {}
        orig_run = Engine.run

        def run(self):
            captured["bus"] = self.machine.events
            return orig_run(self)

        monkeypatch.setattr(Engine, "run", run)
        telemetry = BackoffTelemetry()
        RunSpec("fft", "ASCOMA", 0.7, SCALE).execute(check=True,
                                                     telemetry=telemetry)
        assert captured["bus"].observers == []
        assert captured["bus"].kind_observers == {}
