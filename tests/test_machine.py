"""Unit tests for machine assembly and cross-node wiring."""

from repro.core import CCNUMAPolicy, ASCOMAPolicy, SCOMAPolicy
from repro.sim.config import SystemConfig
from repro.sim.machine import Machine


def make_machine(policy=None, pressure=0.5, n_nodes=4):
    cfg = SystemConfig(n_nodes=n_nodes, memory_pressure=pressure,
                       model_contention=False)
    return Machine(cfg, policy or ASCOMAPolicy(), home_pages_per_node=10,
                   total_shared_pages=10 * n_nodes)


class TestAssembly:
    def test_node_count(self):
        assert len(make_machine().nodes) == 4

    def test_page_cache_sized_by_pressure(self):
        m = make_machine(pressure=0.5)
        assert m.page_cache_frames() == 10
        m = make_machine(pressure=0.1)
        assert m.page_cache_frames() == 90

    def test_ccnuma_has_no_page_cache(self):
        m = make_machine(policy=CCNUMAPolicy())
        assert m.page_cache_frames() == 0

    def test_allocator_quota_balanced(self):
        m = make_machine()
        assert m.allocator.quota == 10

    def test_message_log_optional(self):
        cfg = SystemConfig(n_nodes=2)
        m = Machine(cfg, SCOMAPolicy(), 4, 8, log_messages=True)
        assert m.log is not None
        m2 = Machine(cfg, SCOMAPolicy(), 4, 8)
        assert m2.log is None


class TestCrossNodeWiring:
    def test_protocol_invalidation_reaches_victim_node(self):
        m = make_machine()
        chunk = 0
        line = 0
        m.nodes[1].l1.fill(line)
        m.protocol.remote_fetch(1, chunk, 0, 0, False, 0, 0)   # node 1 shares
        m.protocol.remote_fetch(2, chunk, 0, 0, True, 0, 0)    # node 2 writes
        assert not m.nodes[1].l1.contains(line)

    def test_demotion_reaches_owner(self):
        m = make_machine()
        m.protocol.remote_fetch(1, 0, 0, 0, True, 0, 0)
        m.nodes[1].owned.add(0)
        m.protocol.remote_fetch(2, 0, 0, 0, False, 0, 100)
        assert 0 not in m.nodes[1].owned

    def test_utilisation_report_shape(self):
        m = make_machine()
        report = m.utilisation_report()
        assert set(report) == {"network", "memory", "buses", "directory"}
        assert len(report["memory"]) == 4
