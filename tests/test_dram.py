"""Unit tests for the banked DRAM occupancy model."""

import pytest

from repro.mem.dram import BankedMemory


class TestService:
    def test_uncontended_latency_is_service(self):
        mem = BankedMemory(4, service_cycles=50, occupancy_cycles=20)
        assert mem.access(0, now=0) == 50

    def test_min_latency(self):
        assert BankedMemory(4, 50, 20).min_latency() == 50

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BankedMemory(3)
        with pytest.raises(ValueError):
            BankedMemory(4, service_cycles=0)
        with pytest.raises(ValueError):
            BankedMemory(4, occupancy_cycles=-1)


class TestContention:
    def test_back_to_back_same_bank_queues(self):
        mem = BankedMemory(4, 50, 20)
        assert mem.access(0, now=0) == 50
        # Bank 0 busy until t=20; second access at t=5 queues 15 cycles.
        assert mem.access(0, now=5) == 65

    def test_different_banks_do_not_queue(self):
        mem = BankedMemory(4, 50, 20)
        mem.access(0, now=0)
        assert mem.access(1, now=0) == 50

    def test_chunk_to_bank_interleaving(self):
        mem = BankedMemory(4, 50, 20)
        mem.access(0, now=0)
        assert mem.access(4, now=0) == 70  # chunk 4 -> bank 0 again: queued

    def test_queue_clears_after_occupancy(self):
        mem = BankedMemory(4, 50, 20)
        mem.access(0, now=0)
        assert mem.access(0, now=25) == 50  # past busy_until

    def test_contention_stats(self):
        mem = BankedMemory(4, 50, 20)
        mem.access(0, 0)
        mem.access(0, 0)
        stats = mem.utilisation_stats()
        assert stats["accesses"] == 2
        assert stats["contended"] == 1
        assert stats["total_queue_cycles"] == 20

    def test_sustained_stream_backlog_grows(self):
        mem = BankedMemory(1, 50, 20)
        latencies = [mem.access(0, now=0) for _ in range(5)]
        assert latencies == [50, 70, 90, 110, 130]
