"""Coverage for harness extras: CSV export, message logging through the
engine, engine edge cases, utilisation reporting."""

import csv

import pytest

from repro.coherence.messages import MsgKind
from repro.core import CCNUMAPolicy
from repro.harness import export_csv
from repro.harness.experiment import run_app
from repro.sim.config import SystemConfig
from repro.sim.engine import DEFAULT_QUANTUM, Engine, simulate
from repro.sim.trace import TraceBuilder, WorkloadTraces
from tests.conftest import make_micro_workload

SCALE = 0.2


class TestExportCSV:
    def test_csv_shape(self, tmp_path):
        path = tmp_path / "fft.csv"
        export_csv("fft", str(path), scale=SCALE)
        rows = list(csv.DictReader(open(path)))
        assert rows[0]["label"] == "CCNUMA"
        assert float(rows[0]["relative_total"]) == pytest.approx(1.0)
        assert any(r["label"].startswith("ASCOMA") for r in rows)

    def test_csv_time_components_sum_to_total(self, tmp_path):
        path = tmp_path / "fft.csv"
        export_csv("fft", str(path), scale=SCALE)
        for row in csv.DictReader(open(path)):
            parts = sum(float(v) for k, v in row.items()
                        if k.startswith("time_"))
            assert parts == pytest.approx(float(row["relative_total"]),
                                          rel=1e-4)

    def test_csv_misses_are_integers(self, tmp_path):
        path = tmp_path / "fft.csv"
        export_csv("fft", str(path), scale=SCALE)
        for row in csv.DictReader(open(path)):
            for key, value in row.items():
                if key.startswith("miss_"):
                    assert value == str(int(value))


class TestMessageLogging:
    def test_engine_logs_protocol_messages(self):
        wl = make_micro_workload()
        engine = Engine(wl, CCNUMAPolicy(),
                        SystemConfig(n_nodes=2, model_contention=False),
                        log_messages=True)
        engine.run()
        log = engine.machine.log
        assert log is not None and len(log) > 0
        kinds = {m.kind for m in log.messages}
        assert MsgKind.GET in kinds and MsgKind.DATA in kinds

    def test_log_disabled_by_default(self):
        wl = make_micro_workload()
        engine = Engine(wl, CCNUMAPolicy(), SystemConfig(n_nodes=2))
        engine.run()
        assert engine.machine.log is None


class TestEngineEdges:
    def test_single_node_machine(self):
        b = TraceBuilder()
        b.read(0)
        b.compute(10)
        b.read(1)
        wl = WorkloadTraces("solo", [b.build()], home_pages_per_node=1,
                            total_shared_pages=1)
        result = simulate(wl, CCNUMAPolicy(), SystemConfig(n_nodes=1))
        s = result.node_stats[0]
        assert s.HOME == 2       # everything is home-local
        assert s.remote_misses() == 0

    def test_empty_traces(self):
        wl = WorkloadTraces("empty", [TraceBuilder().build(),
                                      TraceBuilder().build()], 1, 2)
        result = simulate(wl, CCNUMAPolicy(), SystemConfig(n_nodes=2))
        assert result.execution_time() == 0

    def test_trace_without_barriers(self):
        builders = [TraceBuilder(), TraceBuilder()]
        builders[0].read(0)
        builders[1].read(128)
        wl = WorkloadTraces("nb", [b.build() for b in builders], 1, 2)
        result = simulate(wl, CCNUMAPolicy(), SystemConfig(n_nodes=2))
        assert result.aggregate().shared_misses() == 2
        assert result.aggregate().SYNC == 0

    def test_result_extra_fields(self):
        result = run_app("fft", "ASCOMA", 0.5, scale=SCALE)
        assert "utilisation" in result.extra
        assert "page_cache_frames" in result.extra
        assert result.extra["protocol"]["remote_fetches"] > 0

    def test_quantum_default(self):
        wl = make_micro_workload()
        assert Engine(wl, CCNUMAPolicy(),
                      SystemConfig(n_nodes=2)).quantum == DEFAULT_QUANTUM

    def test_aggregate_invariant_under_quantum(self):
        """Total work (miss counts) must be quantum-independent even if
        contention timing wiggles slightly."""
        wl = make_micro_workload(lines=32)
        counts = []
        for quantum in (100, 10_000):
            cfg = SystemConfig(n_nodes=2, model_contention=False)
            result = simulate(wl, CCNUMAPolicy(), cfg, quantum=quantum)
            counts.append(result.aggregate().shared_misses())
        assert counts[0] == counts[1]


class TestUtilisationReport:
    def test_contention_counters_populate(self):
        result = run_app("em3d", "CCNUMA", 0.5, scale=SCALE)
        util = result.extra["utilisation"]
        assert util["network"]["messages"] > 0
        assert util["directory"]["refetches"] > 0
        assert len(util["memory"]) == 8

    def test_scoma_generates_no_relocation_hints(self):
        result = run_app("em3d", "SCOMA", 0.5, scale=SCALE)
        util = result.extra["utilisation"]
        assert util["directory"]["relocation_hints"] == 0
