"""Hypothesis property tests for the ``repro.serve`` job table.

The server is driven through its socket-independent core API
(``submit_job`` / ``get_job`` / ``cancel_job`` / ``drain``) with a fast
fake worker, under arbitrary interleavings of submit, cancel, status
and event-loop ticks from "multiple clients" (interleaved call sites).
Whatever the schedule, after a drain:

* no orphaned futures — the in-flight map and refcount table are empty;
* every submitted job is terminal, its ``done_event`` is set, and its
  bookkeeping matches its state (``done`` means every cell has a
  non-failure outcome);
* every job published **exactly one** terminal state transition on the
  server bus — a job cannot finish twice, and cannot finish two ways.
"""

import asyncio
import contextlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (TERMINAL_STATES, BackpressureError, JobServer,
                         ProtocolError)
from repro.serve.server import EV_JOB

from .serveutil import SMALL_SPECS, make_slow_worker

# Small spec pool: overlap between concurrent submissions is the point.
POOL = list(SMALL_SPECS)

_action = st.one_of(
    st.tuples(st.just("submit"),
              st.lists(st.integers(0, len(POOL) - 1),
                       min_size=1, max_size=3)),
    st.tuples(st.just("cancel"), st.integers(0, 63)),
    st.tuples(st.just("status"), st.integers(0, 63)),
    st.tuples(st.just("tick"), st.just(0)),
)


@settings(max_examples=30, deadline=None)
@given(actions=st.lists(_action, max_size=30))
def test_job_table_consistent_under_any_interleaving(actions):
    async def scenario():
        server = JobServer("unused.sock", store=None, backend="inline",
                           workers=2, max_queued=4, keep_jobs=1024,
                           worker_fn=make_slow_worker(0.003))
        terminal_events = []

        def observer(event):
            if event.detail.get("state") in TERMINAL_STATES:
                terminal_events.append(event.detail["id"])

        server.bus.subscribe(observer, kinds=(EV_JOB,))

        jobs = []
        for name, arg in actions:
            if name == "submit":
                with contextlib.suppress(BackpressureError):
                    jobs.append(server.submit_job([POOL[i] for i in arg]))
            elif name == "cancel" and jobs:
                with contextlib.suppress(ProtocolError):
                    await server.cancel_job(jobs[arg % len(jobs)].id)
            elif name == "status" and jobs:
                job = server.get_job(jobs[arg % len(jobs)].id)
                assert job.state in TERMINAL_STATES | {"queued", "running"}
            elif name == "tick":
                await asyncio.sleep(0.002)

        await server.drain()

        # No orphaned futures, whatever the interleaving was.
        assert not server._inflight
        assert not server._refs

        for job in jobs:
            assert job.terminal, (job.id, job.state)
            assert job.done_event.is_set()
            assert job.task.done()
            assert job.finished is not None
            if job.state == "done":
                assert len(job.outcomes) == len(job.specs)
                assert not job.failures()
            elif job.state == "failed":
                assert job.failures()

        # Exactly one terminal transition per job, ever.
        assert sorted(terminal_events) == sorted(j.id for j in jobs)

    asyncio.run(scenario())
