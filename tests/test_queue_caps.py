"""Tests for the clock-skew queue caps and latency accumulators."""

import pytest

from repro.interconnect.bus import SplitTransactionBus
from repro.interconnect.network import Network
from repro.interconnect.topology import SwitchTopology
from repro.mem.dram import BankedMemory
from repro.sim.stats import NodeStats


class TestDRAMQueueCap:
    def test_queue_bounded(self):
        mem = BankedMemory(1, 50, 20, max_queue_occupancies=8)
        # Saturate the bank far beyond the cap.
        for _ in range(100):
            lat = mem.access(0, now=0)
        assert lat <= 50 + 8 * 20

    def test_skewed_clock_not_booked_as_queueing(self):
        mem = BankedMemory(1, 50, 20, max_queue_occupancies=8)
        mem.access(0, now=1_000_000)   # a far-ahead node touches the bank
        # A node whose clock is behind must not see a megacycle queue.
        assert mem.access(0, now=0) <= 50 + 8 * 20

    def test_cap_zero_disables_queueing(self):
        mem = BankedMemory(1, 50, 20, max_queue_occupancies=0)
        mem.access(0, now=0)
        assert mem.access(0, now=0) == 50


class TestNetworkQueueCap:
    def test_port_queue_bounded(self):
        net = Network(SwitchTopology(4), port_occupancy=8,
                      max_queue_occupancies=8)
        for _ in range(100):
            lat = net.one_way(0, 1, now=0)
        assert lat <= net.min_one_way(0, 1) + 8 * 8

    def test_skew_guard(self):
        net = Network(SwitchTopology(4), port_occupancy=8,
                      max_queue_occupancies=8)
        net.one_way(2, 1, now=10_000_000)
        assert net.one_way(0, 1, now=0) <= net.min_one_way(0, 1) + 64


class TestBusQueueCap:
    def test_bounded(self):
        bus = SplitTransactionBus(occupancy=4, max_queue_occupancies=8)
        for _ in range(100):
            lat = bus.transact(0)
        assert lat <= 8 * 4

    def test_skew_guard(self):
        bus = SplitTransactionBus(occupancy=4, max_queue_occupancies=8)
        bus.transact(5_000_000)
        assert bus.transact(0) <= 32


class TestLatencyAccumulators:
    def test_average_latency_zero_when_no_misses(self):
        assert NodeStats().average_latency("HOME") == 0.0

    def test_average_latency_division(self):
        s = NodeStats()
        s.COLD = 4
        s.COLD_LAT = 800
        assert s.average_latency("COLD") == 200.0

    def test_merge_includes_latency_slots(self):
        a, b = NodeStats(), NodeStats()
        a.RAC, a.RAC_LAT = 1, 36
        b.RAC, b.RAC_LAT = 3, 120
        a.merge(b)
        assert a.average_latency("RAC") == pytest.approx(39.0)
