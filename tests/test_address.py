"""Unit tests for repro.mem.address."""

import pytest

from repro.mem.address import AddressMap


class TestGeometry:
    def test_default_geometry_matches_paper(self):
        amap = AddressMap()
        assert amap.page_bytes == 4096
        assert amap.line_bytes == 32
        assert amap.chunk_bytes == 128

    def test_lines_per_page(self):
        assert AddressMap().lines_per_page == 128

    def test_lines_per_chunk(self):
        assert AddressMap().lines_per_chunk == 4

    def test_chunks_per_page(self):
        assert AddressMap().chunks_per_page == 32

    def test_shifts_consistent(self):
        amap = AddressMap()
        assert 1 << amap.line_shift == amap.lines_per_page
        assert 1 << amap.chunk_shift == amap.lines_per_chunk

    def test_custom_geometry(self):
        amap = AddressMap(page_bytes=8192, line_bytes=64, chunk_bytes=256)
        assert amap.lines_per_page == 128
        assert amap.lines_per_chunk == 4

    @pytest.mark.parametrize("kwargs", [
        {"page_bytes": 3000},
        {"line_bytes": 48},
        {"chunk_bytes": 96},
        {"page_bytes": 0},
        {"line_bytes": -32},
    ])
    def test_rejects_non_power_of_two(self, kwargs):
        with pytest.raises(ValueError):
            AddressMap(**kwargs)

    def test_rejects_chunk_smaller_than_line(self):
        with pytest.raises(ValueError):
            AddressMap(line_bytes=256, chunk_bytes=128)

    def test_rejects_chunk_bigger_than_page(self):
        with pytest.raises(ValueError):
            AddressMap(page_bytes=128, chunk_bytes=4096)


class TestConversions:
    def test_line_id_roundtrip(self):
        amap = AddressMap()
        line = amap.line_id(5, 17)
        assert amap.page_of_line(line) == 5
        assert amap.line_in_page(line) == 17

    def test_line_id_rejects_out_of_range(self):
        amap = AddressMap()
        with pytest.raises(ValueError):
            amap.line_id(0, amap.lines_per_page)
        with pytest.raises(ValueError):
            amap.line_id(0, -1)

    def test_chunk_of_line(self):
        amap = AddressMap()
        assert amap.chunk_of_line(0) == 0
        assert amap.chunk_of_line(3) == 0
        assert amap.chunk_of_line(4) == 1

    def test_page_of_chunk(self):
        amap = AddressMap()
        assert amap.page_of_chunk(0) == 0
        assert amap.page_of_chunk(31) == 0
        assert amap.page_of_chunk(32) == 1

    def test_chunk_in_page(self):
        amap = AddressMap()
        line = amap.line_id(3, 127)
        assert amap.chunk_in_page(line) == 31

    def test_first_chunk_of_page(self):
        amap = AddressMap()
        assert amap.first_chunk_of_page(2) == 64

    def test_lines_of_chunk(self):
        amap = AddressMap()
        assert list(amap.lines_of_chunk(2)) == [8, 9, 10, 11]

    def test_chunks_of_page(self):
        amap = AddressMap()
        chunks = list(amap.chunks_of_page(1))
        assert chunks[0] == 32 and chunks[-1] == 63 and len(chunks) == 32

    def test_every_line_of_page_maps_back(self):
        amap = AddressMap()
        page = 7
        for lip in range(amap.lines_per_page):
            line = amap.line_id(page, lip)
            assert amap.page_of_line(line) == page
            chunk = amap.chunk_of_line(line)
            assert amap.page_of_chunk(chunk) == page
            assert line in amap.lines_of_chunk(chunk)
