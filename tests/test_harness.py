"""Tests for the experiment harness, tables and figures.

These run tiny-scale simulations (scale 0.2) so the whole file stays
fast while still executing the real code paths end to end.
"""

import pytest

from repro.harness import (APP_PRESSURES, ARCHITECTURES, figure_series,
                           format_stacked_bars, format_table, render_figure,
                           render_table1, render_table2, render_table3,
                           render_table4, render_table5, render_table6,
                           run_app, run_pressure_sweep, scaled_policy, table1,
                           table2, table3, table4, table5, table6)
from repro.harness.experiment import get_workload
from repro.sim.stats import MISS_CLASSES, TIME_BUCKETS

SCALE = 0.2


class TestExperiment:
    def test_architecture_list(self):
        assert ARCHITECTURES == ("CCNUMA", "SCOMA", "RNUMA", "VCNUMA",
                                 "ASCOMA")

    def test_pressures_defined_for_all_apps(self):
        assert set(APP_PRESSURES) == {"barnes", "em3d", "fft", "lu", "ocean",
                                      "radix"}
        assert all(0 < p < 1 for ps in APP_PRESSURES.values() for p in ps)

    def test_barnes_not_run_above_70(self):
        assert max(APP_PRESSURES["barnes"]) <= 0.7

    def test_scaled_policy_overrides(self):
        policy = scaled_policy("rnuma")
        assert policy.make_node_state().threshold == 16
        policy = scaled_policy("rnuma", threshold=4)
        assert policy.make_node_state().threshold == 4

    def test_get_workload_cached(self):
        a = get_workload("fft", SCALE)
        b = get_workload("fft", SCALE)
        assert a is b

    def test_run_app_result_identity(self):
        result = run_app("fft", "ASCOMA", 0.5, scale=SCALE)
        assert result.architecture == "ASCOMA"
        assert result.workload == "fft"
        assert result.pressure == 0.5
        assert result.execution_time() > 0

    def test_run_pressure_sweep_keys(self):
        results = run_pressure_sweep("fft", archs=("CCNUMA", "ASCOMA"),
                                     pressures=(0.3, 0.7), scale=SCALE)
        assert ("CCNUMA", None) in results
        assert ("ASCOMA", 0.3) in results and ("ASCOMA", 0.7) in results


class TestTables:
    def test_table1_structure(self):
        rows = table1()
        assert len(rows) == 3
        assert rows[0]["model"] == "CC-NUMA"

    def test_table2_structure(self):
        assert len(table2()) == 3

    def test_table3_mentions_rac(self):
        assert "RAC" in table3()

    def test_table4_matches_paper_minimums(self):
        data = table4()
        assert data["L1 Cache"] == 1.0
        assert data["Local Memory"] == pytest.approx(50, abs=2)
        assert data["RAC"] == pytest.approx(36, abs=2)
        assert data["Remote Memory"] == pytest.approx(180, abs=5)
        assert data["remote_to_local_ratio"] == pytest.approx(3.6, abs=0.15)

    def test_table5_rows(self):
        rows = table5(SCALE)
        byname = {r["program"]: r for r in rows}
        assert byname["lu"]["nodes"] == 4
        assert byname["radix"]["ideal_pressure"] < byname["fft"]["ideal_pressure"]
        for r in rows:
            assert 0 < r["ideal_pressure"] < 1
            assert r["max_remote_pages"] > 0

    def test_table6_rows(self):
        rows = table6(SCALE)
        byname = {r["program"]: r for r in rows}
        # fft/ocean relocate few pages; lu/radix relocate nearly all.
        assert byname["fft"]["pct_relocated"] < 30
        assert byname["radix"]["pct_relocated"] > 60
        for r in rows:
            assert r["relocated_pages"] <= r["total_remote_pages"]

    def test_renderers_produce_text(self):
        for render in (render_table1, render_table2, render_table3):
            out = render()
            assert "Table" in out and "|" in out

    def test_render_table4_contains_ratio(self):
        assert "remote:local ratio" in render_table4()

    def test_render_table5_and_6(self):
        assert "Ideal pressure" in render_table5(SCALE)
        assert "% Relocated" in render_table6(SCALE)


class TestFigures:
    @pytest.fixture(scope="class")
    def fft_series(self):
        return figure_series("fft", scale=SCALE)

    def test_series_structure(self, fft_series):
        assert set(fft_series) == {"time", "misses", "relative_total"}
        assert "CCNUMA" in fft_series["time"]

    def test_ccnuma_bar_normalised_to_one(self, fft_series):
        assert fft_series["relative_total"]["CCNUMA"] == pytest.approx(1.0)

    def test_bars_labelled_with_pressure(self, fft_series):
        assert any("(" in label for label in fft_series["time"])

    def test_time_components_complete(self, fft_series):
        for parts in fft_series["time"].values():
            assert set(parts) == set(TIME_BUCKETS)

    def test_miss_components_complete(self, fft_series):
        for parts in fft_series["misses"].values():
            assert set(parts) == set(MISS_CLASSES)

    def test_render_figure_text(self):
        out = render_figure("fft", scale=SCALE)
        assert "FFT" in out
        assert "legend" in out


class TestReportHelpers:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len({len(row) for row in lines}) <= 2  # header sep may differ

    def test_format_stacked_bars(self):
        out = format_stacked_bars(
            {"X": {"A": 1.0, "B": 1.0}, "Y": {"A": 0.5, "B": 0.0}},
            order=["A", "B"], width=10)
        assert "X" in out and "legend" in out
