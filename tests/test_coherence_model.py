"""Coherence correctness: SWMR invariants and a golden data-value model.

The directory must maintain the single-writer / multiple-reader
invariant, and the full machine must never cache stale data.  Two
layers of checking:

1. **Directory-level golden model** (hypothesis): random GET/GETX/drop
   sequences, checking SWMR after every operation and that every
   copyset member's last-received data version is the current one.

2. **Machine-level audit**: run full workloads, then verify that every
   cached item -- L1 line, RAC chunk, S-COMA valid bit, owned chunk --
   implies copyset membership at the directory, so the protocol's
   invalidations can always reach every copy.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence.directory import Directory
from repro.coherence.protocol import CoherenceProtocol
from repro.harness.experiment import scaled_policy
from repro.interconnect.network import Network
from repro.interconnect.topology import SwitchTopology
from repro.mem.dram import BankedMemory
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.workloads import generate_workload, migratory, synthetic

N_NODES = 4
ops = st.lists(st.tuples(st.integers(0, N_NODES - 1),       # node
                         st.integers(0, 31),                # chunk (page 0)
                         st.sampled_from(["read", "write", "drop"])),
               max_size=400)


class GoldenModel:
    """Reference data-value model: versions per chunk, copies per node."""

    def __init__(self) -> None:
        self.version: dict[int, int] = {}
        self.copy_version: dict[tuple[int, int], int] = {}

    def on_read(self, node: int, chunk: int) -> None:
        self.copy_version[(node, chunk)] = self.version.get(chunk, 0)

    def on_write(self, node: int, chunk: int) -> None:
        self.version[chunk] = self.version.get(chunk, 0) + 1
        self.copy_version[(node, chunk)] = self.version[chunk]

    def on_invalidate(self, node: int, chunk: int,
                      now: int | None = None) -> None:
        self.copy_version.pop((node, chunk), None)

    def check(self, directory: Directory) -> None:
        for chunk, cs in directory.copyset.items():
            current = self.version.get(chunk, 0)
            for node in range(N_NODES):
                if cs >> node & 1:
                    held = self.copy_version.get((node, chunk))
                    assert held == current, (
                        f"node {node} holds version {held} of chunk {chunk},"
                        f" current is {current}")


def make_protocol(golden: GoldenModel):
    directory = Directory(N_NODES, 32)
    network = Network(SwitchTopology(N_NODES), port_occupancy=0)
    memories = [BankedMemory(4, 50, 20) for _ in range(N_NODES)]
    protocol = CoherenceProtocol(
        directory, network, memories,
        invalidate_chunk=golden.on_invalidate)
    return directory, protocol


class TestDirectoryGoldenModel:
    @given(ops)
    @settings(max_examples=200, deadline=None)
    def test_swmr_and_value_consistency(self, sequence):
        golden = GoldenModel()
        directory, protocol = make_protocol(golden)
        for node, chunk, op in sequence:
            if op == "drop":
                directory.drop_node_from_page(node, 0)
                for c in range(32):
                    golden.on_invalidate(node, c)
                continue
            is_write = op == "write"
            protocol.remote_fetch(node, chunk, 0, (node + 1) % N_NODES,
                                  is_write, 0, 0)
            if is_write:
                golden.on_write(node, chunk)
            else:
                golden.on_read(node, chunk)
            # SWMR: a dirty owner is the sole copyset member.
            owner = directory.owner.get(chunk)
            if owner is not None:
                assert directory.sharers(chunk) == [owner]
            golden.check(directory)

    @given(ops)
    @settings(max_examples=100, deadline=None)
    def test_owner_always_in_copyset(self, sequence):
        golden = GoldenModel()
        directory, protocol = make_protocol(golden)
        for node, chunk, op in sequence:
            if op == "drop":
                directory.drop_node_from_page(node, 0)
                continue
            protocol.remote_fetch(node, chunk, 0, (node + 1) % N_NODES,
                                  op == "write", 0, 0)
            for c, owner in directory.owner.items():
                assert directory.is_cached_by(c, owner)


# The machine-level audit now lives in the checker subsystem; sibling
# test modules keep importing it from here.
from repro.check.audit import audit_machine  # noqa: E402


@pytest.mark.parametrize("arch", ["CCNUMA", "SCOMA", "RNUMA", "VCNUMA",
                                  "ASCOMA", "CCNUMAMIG"])
@pytest.mark.parametrize("pressure", [0.3, 0.9])
class TestMachineAudit:
    def test_no_unreachable_copies_after_run(self, arch, pressure):
        wl = synthetic.generate(
            n_nodes=4, home_pages_per_node=6, remote_pages_per_node=10,
            sweeps=5, lines_per_visit=8, hot_fraction=0.8,
            write_fraction=0.3, home_lines_per_sweep=32, seed=3)
        cfg = SystemConfig(n_nodes=4, memory_pressure=pressure)
        from repro.core import make_policy
        kwargs = {"RNUMA": dict(threshold=8),
                  "VCNUMA": dict(threshold=8, break_even=4, increment=4),
                  "ASCOMA": dict(threshold=8, increment=4),
                  "CCNUMAMIG": dict(threshold=8)}.get(arch, {})
        engine = Engine(wl, make_policy(arch, **kwargs), cfg)
        engine.run()
        audit_machine(engine)


class TestAuditOnPaperWorkloads:
    @pytest.mark.parametrize("app", ["em3d", "radix"])
    def test_audit_full_workload(self, app):
        wl = generate_workload(app, scale=0.25)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.7)
        engine = Engine(wl, scaled_policy("ASCOMA"), cfg)
        engine.run()
        audit_machine(engine)

    def test_audit_migration_workload(self):
        wl = migratory.generate(scale=0.25, sweeps=6)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5)
        from repro.core import make_policy
        engine = Engine(wl, make_policy("ccnuma-mig", threshold=8), cfg)
        engine.run()
        audit_machine(engine)
