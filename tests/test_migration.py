"""Tests for the dynamic page-migration extension (CCNUMA-MIG)."""

import pytest

from repro.core import MigratingCCNUMAPolicy, make_policy
from repro.core.policy import RelocationDecision
from repro.kernel.allocation import HomeAllocator
from repro.kernel.vm import PageMode
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine, simulate
from repro.sim.trace import TraceBuilder, WorkloadTraces
from repro.workloads import migratory

LPP = 128


def cfg(pressure=0.5):
    return SystemConfig(n_nodes=2, memory_pressure=pressure,
                        model_contention=False)


def consumer_workload(consumer_refetches=40, shared_reader=False, n_nodes=2):
    """Node 0 produces pages 0 and 2; node 1 consumes them heavily with
    L1- and RAC-conflicting lines (0 and 256 share L1 set 0 and the
    single RAC slot), generating refetches.  Optionally a third node
    reads page 0 once, making it *shared* and vetoing migration."""
    home_pages = 3  # node 0 homes pages 0..2: 0 and 2 conflict in L1
    builders = [TraceBuilder() for _ in range(n_nodes)]
    for node, b in enumerate(builders):
        for page in range(node * home_pages, (node + 1) * home_pages):
            b.read(page * LPP)
        b.barrier(0)
    for _ in range(consumer_refetches):
        builders[1].read(0)          # page 0, chunk 0, L1 set 0
        builders[1].read(2 * LPP)    # page 2, chunk 64, L1 set 0 too
    if shared_reader and n_nodes > 2:
        builders[2].read(0)
    for b in builders:
        b.barrier(1)
    return WorkloadTraces("mig-micro", [b.build() for b in builders],
                          home_pages_per_node=home_pages,
                          total_shared_pages=n_nodes * home_pages)


class TestPolicy:
    def test_registry_name(self):
        assert make_policy("ccnuma-mig") is not None
        assert make_policy("CCNUMAMIG").name == "CCNUMA-MIG"

    def test_migrate_decision(self):
        policy = MigratingCCNUMAPolicy(threshold=8)
        state = policy.make_node_state()
        assert policy.on_relocation_hint(state, 0) == \
            RelocationDecision.MIGRATE

    def test_initial_mode_is_ccnuma(self):
        policy = MigratingCCNUMAPolicy()
        assert policy.initial_mode(policy.make_node_state(), 5) == \
            PageMode.CCNUMA

    def test_no_page_cache(self):
        assert not MigratingCCNUMAPolicy().uses_page_cache

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            MigratingCCNUMAPolicy(threshold=0)


class TestAllocatorMigrate:
    def test_migrate_moves_home_and_counts(self):
        alloc = HomeAllocator(2, 4)
        alloc.home_of(0, 0)
        old = alloc.migrate(0, 1)
        assert old == 0
        assert alloc.home[0] == 1
        assert alloc.pages_homed_at(0) == 0
        assert alloc.pages_homed_at(1) == 1

    def test_migrate_to_same_home_is_noop(self):
        alloc = HomeAllocator(2, 4)
        alloc.home_of(0, 0)
        alloc.migrate(0, 0)
        assert alloc.pages_homed_at(0) == 1

    def test_migrate_unassigned_page_raises(self):
        with pytest.raises(KeyError):
            HomeAllocator(2, 4).migrate(0, 1)

    def test_migrate_bad_node_raises(self):
        alloc = HomeAllocator(2, 4)
        alloc.home_of(0, 0)
        with pytest.raises(ValueError):
            alloc.migrate(0, 5)


class TestEngineMigration:
    def test_hot_page_migrates_to_consumer(self):
        wl = consumer_workload()
        engine = Engine(wl, MigratingCCNUMAPolicy(threshold=8), cfg())
        result = engine.run()
        consumer = engine.machine.nodes[1]
        assert result.node_stats[1].migrations >= 1
        assert engine.machine.allocator.home[0] == 1
        assert consumer.page_table.mode_of(0) == PageMode.HOME
        # Old home demoted to CC-NUMA mapping.
        assert engine.machine.nodes[0].page_table.mode_of(0) == PageMode.CCNUMA

    def test_post_migration_accesses_are_local(self):
        wl = consumer_workload(consumer_refetches=60)
        engine = Engine(wl, MigratingCCNUMAPolicy(threshold=8), cfg())
        result = engine.run()
        # After migration the consumer's misses are HOME class.
        assert result.node_stats[1].HOME > 0

    def test_shared_page_is_not_migrated(self):
        wl = consumer_workload(shared_reader=True, n_nodes=3)
        config = SystemConfig(n_nodes=3, memory_pressure=0.5,
                              model_contention=False)
        engine = Engine(wl, MigratingCCNUMAPolicy(threshold=8), config)
        result = engine.run()
        assert engine.machine.allocator.home[0] == 0  # stayed put
        assert result.node_stats[1].skipped_migrations >= 1
        # The non-shared companion page (page 2) is still free to move.
        assert engine.machine.allocator.home[2] == 1

    def test_migration_charged_k_overhead(self):
        wl = consumer_workload()
        result = simulate(wl, MigratingCCNUMAPolicy(threshold=8), cfg())
        assert result.node_stats[1].K_OVERHD > 0


class TestMigratoryWorkload:
    def test_every_page_has_single_consumer(self):
        wl = migratory.generate(scale=0.25)
        h = wl.home_pages_per_node
        consumers: dict[int, set[int]] = {}
        for node, trace in enumerate(wl.traces):
            for page in trace.pages_touched(128):
                if not node * h <= page < (node + 1) * h:
                    consumers.setdefault(page, set()).add(node)
        assert all(len(c) == 1 for c in consumers.values())

    def test_migration_beats_ccnuma_at_high_pressure(self):
        wl = migratory.generate(scale=0.25, sweeps=10)
        config = SystemConfig(n_nodes=8, memory_pressure=0.9)
        base = simulate(wl, make_policy("ccnuma"), config).aggregate()
        mig = simulate(wl, make_policy("ccnuma-mig", threshold=8),
                       config).aggregate()
        assert mig.total_cycles() < 0.9 * base.total_cycles()
        assert mig.migrations > 0

    def test_migration_is_pressure_insensitive(self):
        wl = migratory.generate(scale=0.25, sweeps=10)
        totals = []
        for pressure in (0.1, 0.9):
            config = SystemConfig(n_nodes=8, memory_pressure=pressure)
            agg = simulate(wl, make_policy("ccnuma-mig", threshold=8),
                           config).aggregate()
            totals.append(agg.total_cycles())
        assert totals[0] == pytest.approx(totals[1], rel=0.02)

    def test_migration_useless_on_shared_workload(self):
        """em3d-style sharing vetoes migration almost everywhere."""
        from repro.workloads import em3d
        wl = em3d.generate(scale=0.25)
        config = SystemConfig(n_nodes=8, memory_pressure=0.5)
        mig = simulate(wl, make_policy("ccnuma-mig", threshold=8),
                       config).aggregate()
        assert mig.skipped_migrations > mig.migrations
