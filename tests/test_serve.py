"""Protocol and server behaviour tests for ``repro.serve``.

Three layers:

* pure protocol functions (golden frames, malformed-frame rejection) —
  no sockets, no server;
* one server on a Unix socket driven through :class:`ServeClient` and
  through raw sockets (submit/status/result/cancel/watch/jobs/ping,
  cancellation mid-cell, disconnect-during-stream, backpressure);
* store parity — a server-routed run writes the byte-identical
  artifact an in-process :func:`repro.runtime.execute` writes.
"""

import json
import os
import socket
import time

import pytest

from repro.runtime import RunSpec, RunStore, execute
from repro.serve import (MAX_FRAME_BYTES, PROTOCOL_VERSION, ProtocolError,
                         ServeClient, ServeError, decode_frame, encode_frame,
                         error_frame)
from repro.serve.protocol import parse_request, parse_specs

from .serveutil import (SMALL_SPEC, SMALL_SPECS, make_slow_worker, serve_tmp,
                        wait_terminal)


# ---------------------------------------------------------------------------
# protocol layer (no server)
# ---------------------------------------------------------------------------

def test_frame_encoding_golden():
    # The framing is pinned: compact JSON, one object per newline line.
    assert encode_frame({"op": "ping"}) == b'{"op":"ping"}\n'
    frame = {"op": "status", "job": "j000001", "id": "abc"}
    assert decode_frame(encode_frame(frame)) == frame
    assert error_frame("unknown-op", "nope") == {
        "ok": False, "code": "unknown-op", "error": "nope"}
    assert error_frame("bad-frame", "x", id="7") == {
        "ok": False, "code": "bad-frame", "error": "x", "id": "7"}


def test_decode_frame_rejects_garbage():
    for bad in (b"\xff\xfe\x00", b"not json\n", b"[1,2,3]\n", b'"str"\n',
                b"42\n"):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(bad)
        assert excinfo.value.code == "bad-frame"


def test_parse_request_validation():
    assert parse_request({"op": "ping"}) == "ping"
    cases = [
        ({"op": "frobnicate"}, "unknown-op"),
        ({}, "unknown-op"),
        ({"op": 3}, "unknown-op"),
        ({"op": "status"}, "bad-request"),          # missing job id
        ({"op": "cancel", "job": ""}, "bad-request"),
        ({"op": "result", "job": 7}, "bad-request"),
        ({"op": "submit"}, "bad-request"),          # missing specs
        ({"op": "submit", "specs": []}, "bad-request"),
        ({"op": "submit", "specs": "fft"}, "bad-request"),
        ({"op": "submit", "specs": [{}], "wait": "yes"}, "bad-request"),
        ({"op": "submit", "specs": [{}], "retries": -1}, "bad-request"),
    ]
    for frame, code in cases:
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(frame)
        assert excinfo.value.code == code, frame


def test_parse_specs():
    specs = parse_specs([SMALL_SPEC.to_dict()])
    assert specs == [SMALL_SPEC]
    for bad in ([42], [{"app": "fft"}]):  # not a dict / missing fields
        with pytest.raises(ProtocolError) as excinfo:
            parse_specs(bad)
        assert excinfo.value.code == "bad-spec"


# ---------------------------------------------------------------------------
# request/response over a live server
# ---------------------------------------------------------------------------

def test_ping_reports_server_shape():
    with serve_tmp() as (server, sock):
        with ServeClient(sock) as client:
            info = client.ping()
    assert info["protocol"] == PROTOCOL_VERSION
    assert info["backend"] == "inline"
    assert info["pid"] == os.getpid()
    assert set(info["stats"]) == {"submitted", "simulated", "hits",
                                  "attached", "rejected", "store_failures"}


def test_request_id_is_echoed():
    with serve_tmp() as (server, sock):
        with ServeClient(sock) as client:
            response = client.request({"op": "ping", "id": "corr-42"})
            assert response["id"] == "corr-42"
            # ... including on error responses.
            try:
                client.request({"op": "status", "job": "zzz", "id": "corr-43"})
            except ServeError as exc:
                assert exc.code == "unknown-job"


def test_submit_wait_result_roundtrip():
    with serve_tmp() as (server, sock):
        with ServeClient(sock) as client:
            job = client.submit(SMALL_SPEC, wait=True)
            assert job["state"] == "done"
            assert job["cells"] == 1 and job["completed"] == 1
            assert job["failed"] == 0
            assert job["counts"].get("run") == 1
            assert "wall_s" in job

            response = client.result(job["id"])
            (entry,) = response["results"]
            assert entry["spec_hash"] == SMALL_SPEC.spec_hash()
            assert RunSpec.from_dict(entry["spec"]) == SMALL_SPEC
            assert entry["result"]["architecture"] == "ASCOMA"

            outcomes = client.outcomes(job["id"])
            assert outcomes[SMALL_SPEC].execution_time() > 0

            # Second submit of the same cell is served from the store.
            job2 = client.submit(SMALL_SPEC, wait=True)
            assert job2["counts"].get("hit") == 1
        assert server.stats["simulated"] == 1
        assert server.stats["hits"] == 1
        assert server.store.writes == 1


def test_duplicate_specs_collapse_in_one_submission():
    with serve_tmp() as (server, sock):
        with ServeClient(sock) as client:
            job = client.submit([SMALL_SPEC, SMALL_SPEC, SMALL_SPEC],
                                wait=True)
    assert job["cells"] == 1
    assert job["state"] == "done"


def test_submit_stream_emits_progress_events():
    events = []
    with serve_tmp() as (server, sock):
        with ServeClient(sock) as client:
            job = client.submit(SMALL_SPECS, stream=True,
                                on_event=events.append)
    assert job["state"] == "done"
    assert all(e["job"] == job["id"] for e in events)
    states = [e["state"] for e in events if e["ev"] == "job"]
    assert states[0] == "queued"
    assert "running" in states
    assert states[-1] == "done"
    cell_names = [e["name"] for e in events if e["ev"] == "cell"]
    assert cell_names.count("run") == len(SMALL_SPECS)
    hashes = {e["spec_hash"] for e in events if e["ev"] == "cell"}
    assert hashes == {s.spec_hash() for s in SMALL_SPECS}


def test_jobs_listing():
    with serve_tmp() as (server, sock):
        with ServeClient(sock) as client:
            first = client.submit(SMALL_SPEC, wait=True)
            second = client.submit(SMALL_SPECS, wait=True)
            listed = {j["id"]: j for j in client.jobs()}
    assert set(listed) == {first["id"], second["id"]}
    assert listed[second["id"]]["cells"] == len(SMALL_SPECS)


def test_watch_live_and_terminal_job():
    events = []
    with serve_tmp(worker_fn=make_slow_worker(0.3), store=None) as (
            server, sock):
        with ServeClient(sock) as submitter, ServeClient(sock) as watcher:
            job = submitter.submit(SMALL_SPEC)  # detached
            watched = watcher.watch(job["id"], on_event=events.append)
            assert watched["state"] == "done"
            # Watching an already-terminal job answers immediately.
            again = watcher.watch(job["id"])
            assert again["state"] == "done"
    assert any(e["ev"] == "job" and e["state"] == "done" for e in events)


def test_result_before_terminal_is_not_done():
    with serve_tmp(worker_fn=make_slow_worker(0.5), store=None) as (
            server, sock):
        with ServeClient(sock) as client:
            job = client.submit(SMALL_SPEC)
            with pytest.raises(ServeError) as excinfo:
                client.result(job["id"])
            assert excinfo.value.code == "not-done"
            client.cancel(job["id"])


def test_unknown_job_code():
    with serve_tmp() as (server, sock):
        with ServeClient(sock) as client:
            for op in ("status", "result", "cancel", "watch"):
                with pytest.raises(ServeError) as excinfo:
                    client.request({"op": op, "job": "j999999"})
                assert excinfo.value.code == "unknown-job"


def test_cancel_mid_cell_keeps_server_alive():
    with serve_tmp(worker_fn=make_slow_worker(2.0), store=None) as (
            server, sock):
        with ServeClient(sock) as client:
            job = client.submit(SMALL_SPEC)
            # Wait until the cell is actually in flight.
            deadline = time.monotonic() + 5.0
            while not server._inflight and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server._inflight, "cell never started"
            t0 = time.monotonic()
            cancelled = client.cancel(job["id"])
            assert cancelled["state"] == "cancelled"
            # Cancellation must not wait out the 2s simulation.
            assert time.monotonic() - t0 < 1.0
            assert client.status(job["id"])["state"] == "cancelled"
            # The server keeps serving afterwards: same connection and a
            # fresh submit both work.
            assert client.ping()["live_jobs"] == 0
            job2 = client.submit(SMALL_SPEC)
            assert client.status(job2["id"])["state"] in ("queued", "running")
            client.cancel(job2["id"])


def test_cancel_terminal_job_is_idempotent():
    with serve_tmp() as (server, sock):
        with ServeClient(sock) as client:
            job = client.submit(SMALL_SPEC, wait=True)
            assert client.cancel(job["id"])["state"] == "done"


def test_backpressure_bounds_live_jobs():
    with serve_tmp(worker_fn=make_slow_worker(1.0), store=None,
                   max_queued=2) as (server, sock):
        with ServeClient(sock) as client:
            jobs = [client.submit(s) for s in SMALL_SPECS[:2]]
            with pytest.raises(ServeError) as excinfo:
                client.submit(SMALL_SPECS[2])
            assert excinfo.value.code == "backpressure"
            for job in jobs:
                client.cancel(job["id"])
            # Capacity frees up once jobs leave the live set.
            job = client.submit(SMALL_SPECS[3])
            assert job["id"]
            client.cancel(job["id"])
    assert server.stats["rejected"] == 1


def test_malformed_json_answers_then_closes():
    with serve_tmp() as (server, sock):
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.settimeout(5.0)
        raw.connect(sock)
        raw.sendall(b"this is not json\n")
        reply = json.loads(raw.makefile("rb").readline())
        assert reply["ok"] is False and reply["code"] == "bad-frame"
        # The stream is no longer trusted: the server hangs up ...
        assert raw.makefile("rb").readline() == b""
        raw.close()
        # ... but keeps accepting fresh connections.
        with ServeClient(sock) as client:
            assert client.ping()["protocol"] == PROTOCOL_VERSION


def test_bad_request_keeps_connection_open():
    with serve_tmp() as (server, sock):
        with ServeClient(sock) as client:
            with pytest.raises(ServeError) as excinfo:
                client.request({"op": "frobnicate"})
            assert excinfo.value.code == "unknown-op"
            with pytest.raises(ServeError):
                client.request({"op": "submit", "specs": []})
            # Same connection still answers valid requests.
            assert client.ping()["protocol"] == PROTOCOL_VERSION


def test_client_disconnect_during_stream_keeps_server_and_job():
    with serve_tmp(worker_fn=make_slow_worker(0.4), store=None) as (
            server, sock):
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.settimeout(5.0)
        raw.connect(sock)
        raw.sendall(encode_frame({
            "op": "submit", "specs": [SMALL_SPEC.to_dict()], "stream": True}))
        # Read the first event so the stream is definitely established,
        # then vanish without saying goodbye.
        first = json.loads(raw.makefile("rb").readline())
        assert first.get("ev") == "job"
        job_id = first["job"]
        raw.close()

        with ServeClient(sock) as client:
            # Server is alive and the orphaned job ran to completion.
            job = wait_terminal(client, job_id)
            assert job["state"] == "done"
            # The dead client's stream subscription was cleaned up.
            deadline = time.monotonic() + 5.0
            while server.bus.kind_observers and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not server.bus.kind_observers
            assert not server.bus.observers


def test_oversized_frame_is_rejected():
    with serve_tmp() as (server, sock):
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.settimeout(10.0)
        raw.connect(sock)
        filler = b'{"op":"ping","pad":"' + b"x" * (MAX_FRAME_BYTES + 64)
        raw.sendall(filler + b'"}\n')
        reply = json.loads(raw.makefile("rb").readline())
        assert reply["ok"] is False and reply["code"] == "bad-frame"
        raw.close()
        with ServeClient(sock) as client:
            assert client.ping()["protocol"] == PROTOCOL_VERSION


def test_shutdown_op_stops_server():
    with serve_tmp() as (server, sock):
        with ServeClient(sock) as client:
            assert client.shutdown() is True
        deadline = time.monotonic() + 5.0
        while os.path.exists(sock) and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not os.path.exists(sock)


def test_terminal_job_eviction_is_bounded():
    with serve_tmp(keep_jobs=3) as (server, sock):
        with ServeClient(sock) as client:
            for spec in SMALL_SPECS:
                client.submit(spec, wait=True)
            client.submit(SMALL_SPEC, wait=True)
            listed = client.jobs()
    assert len(listed) == 3
    assert all(j["state"] == "done" for j in listed)


# ---------------------------------------------------------------------------
# store parity with the in-process executor
# ---------------------------------------------------------------------------

def test_server_store_artifact_is_byte_identical(tmp_path):
    local_store = RunStore(tmp_path / "local")
    outcomes = execute([SMALL_SPEC], store=local_store, parallel=False)
    assert SMALL_SPEC in outcomes

    with serve_tmp() as (server, sock):
        with ServeClient(sock) as client:
            job = client.submit(SMALL_SPEC, wait=True)
            assert job["state"] == "done"
        server_artifact = server.store.path_for(SMALL_SPEC).read_bytes()

    local_artifact = local_store.path_for(SMALL_SPEC).read_bytes()
    assert server_artifact == local_artifact
