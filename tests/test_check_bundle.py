"""Failure-replay bundles: golden round-trip + the ``check`` CLI.

A bundle must round-trip losslessly through disk (workload traces,
config, policy kwargs, violations, quantum, granularity) and its replay
must be deterministic.  The CLI layer on top must exit 0 on a clean run
and non-zero once the seeded protocol bug is injected.
"""

import numpy as np
import pytest

from repro.check import (InvariantChecker, ReproBundle, config_from_dict,
                         config_to_dict)
from repro.core import make_policy
from repro.harness.cli import main
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.workloads import synthetic

ASCOMA_KWARGS = dict(threshold=8, increment=4)


def seeded_bundle() -> ReproBundle:
    wl = synthetic.generate(
        n_nodes=4, home_pages_per_node=6, remote_pages_per_node=10,
        sweeps=5, lines_per_visit=8, hot_fraction=0.8, write_fraction=0.5,
        home_lines_per_sweep=32, seed=3)
    cfg = SystemConfig(n_nodes=4, memory_pressure=0.5,
                       debug_skip_invalidate_node=1)
    engine = Engine(wl, make_policy("ASCOMA", **ASCOMA_KWARGS), cfg)
    checker = InvariantChecker.attach(engine, granularity="event")
    engine.run()
    assert checker.violations
    return ReproBundle.capture(engine, checker, architecture="ASCOMA",
                               policy_kwargs=ASCOMA_KWARGS)


class TestConfigRoundTrip:
    def test_default_config(self):
        cfg = SystemConfig(n_nodes=4)
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_non_default_fields_survive(self):
        cfg = SystemConfig(n_nodes=8, memory_pressure=0.9,
                           debug_skip_invalidate_node=3)
        restored = config_from_dict(config_to_dict(cfg))
        assert restored.debug_skip_invalidate_node == 3
        assert restored == cfg


class TestBundleRoundTrip:
    @pytest.fixture(scope="class")
    def bundle(self):
        return seeded_bundle()

    def test_save_load_preserves_everything(self, bundle, tmp_path):
        path = bundle.save(str(tmp_path / "bundle"))
        loaded = ReproBundle.load(path)
        assert loaded.architecture == "ASCOMA"
        assert loaded.policy_kwargs == ASCOMA_KWARGS
        assert loaded.config == bundle.config
        assert loaded.quantum == bundle.quantum
        assert loaded.granularity == "event"
        assert ([v.as_dict() for v in loaded.violations]
                == [v.as_dict() for v in bundle.violations])
        assert loaded.workload.name == bundle.workload.name
        for a, b in zip(loaded.workload.traces, bundle.workload.traces):
            assert np.array_equal(a.kinds, b.kinds)
            assert np.array_equal(a.args, b.args)

    def test_replay_is_deterministic(self, bundle, tmp_path):
        loaded = ReproBundle.load(bundle.save(str(tmp_path / "bundle")))
        result, checker = loaded.replay()
        assert ([v.as_dict() for v in checker.violations]
                == [v.as_dict() for v in bundle.violations])
        assert result.invariant_violations == len(bundle.violations)

    def test_load_rejects_foreign_directory(self, tmp_path):
        (tmp_path / "bundle.json").write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a repro-check-bundle"):
            ReproBundle.load(str(tmp_path))


class TestCheckCli:
    ARGS = ["--scale", "0.2", "check", "fft", "ascoma", "--pressure", "0.7"]

    def test_clean_run_exits_zero(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "no invariant violations" in out

    def test_seeded_bug_exits_nonzero(self, capsys, tmp_path):
        bundle_dir = str(tmp_path / "bundle")
        code = main(self.ARGS + ["--inject-skip-invalidate", "1",
                                 "--bundle-dir", bundle_dir])
        assert code == 1
        out = capsys.readouterr().out
        assert "invariant violation(s)" in out
        assert "cache-reachability [node 1," in out
        # The bundle written by the CLI replays the same failure.
        loaded = ReproBundle.load(bundle_dir)
        _, checker = loaded.replay()
        assert checker.violations

    def test_run_check_flag_reports(self, capsys):
        assert main(["--scale", "0.2", "run", "fft", "ascoma", "--check"]) == 0
        assert "invariants     : 0 violation(s)" in capsys.readouterr().out

    def test_matrix_check_flag_reports(self, capsys):
        assert main(["--scale", "0.2", "matrix", "--apps", "fft",
                     "--serial", "--check"]) == 0
        assert "0 violation(s) across" in capsys.readouterr().out
