"""Stress and fault-injection tests for the ``repro.serve`` server.

* N concurrent clients submitting overlapping specs: each unique spec
  hash simulates **exactly once** (pinned via ``RunStore.writes`` and
  the server's ``simulated`` stat), and every client receives identical
  outcomes.
* A pool worker killed mid-job fails that job with a RunFailure payload
  but leaves the server serving; the pool is rebuilt lazily.
* A raising ``store.put`` surfaces the executor's ``store-fail`` tag as
  a protocol event without losing the simulated result.
* 1000 sequential streamed jobs leave the server-wide EventBus observer
  lists empty — the subscription-lifecycle regression test.
"""

import asyncio
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.runtime import RunSpec, RunStore
from repro.serve import JobServer, ServeClient

from .serveutil import (SMALL_SPEC, SMALL_SPECS, fast_worker, serve_tmp,
                        wait_terminal)

N_CLIENTS = 8


def test_concurrent_clients_simulate_each_cell_exactly_once():
    with serve_tmp(workers=4) as (server, sock):
        barrier_results = []

        def one_client(idx: int) -> dict:
            with ServeClient(sock) as client:
                job = client.submit(SMALL_SPECS, wait=True)
                assert job["state"] == "done"
                outcomes = client.outcomes(job["id"])
                return {spec.spec_hash(): result.to_dict()
                        for spec, result in outcomes.items()}

        with ThreadPoolExecutor(N_CLIENTS) as pool:
            barrier_results = list(pool.map(one_client, range(N_CLIENTS)))

        # Exactly-once per unique spec hash, server-wide: one store
        # write and one simulation per cell, no matter how many clients
        # raced.  Everyone else hit the store or attached in flight.
        assert server.store.writes == len(SMALL_SPECS)
        assert server.stats["simulated"] == len(SMALL_SPECS)
        claims = N_CLIENTS * len(SMALL_SPECS)
        assert (server.stats["hits"] + server.stats["attached"]
                == claims - len(SMALL_SPECS))

    assert len(barrier_results) == N_CLIENTS
    first = barrier_results[0]
    assert set(first) == {s.spec_hash() for s in SMALL_SPECS}
    for other in barrier_results[1:]:
        assert other == first


def test_killed_pool_worker_fails_job_not_server():
    spec = RunSpec("fft", "ASCOMA", 0.7, 0.3)  # long enough to catch
    with serve_tmp(backend="process", workers=1) as (server, sock):
        with ServeClient(sock) as client:
            job = client.submit(spec)  # detached

            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                pool = server._pool
                if pool is not None and pool._processes:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("worker pool never spawned")
            for pid in list(pool._processes):
                os.kill(pid, signal.SIGKILL)

            failed = wait_terminal(client, job["id"])
            assert failed["state"] == "failed"
            assert failed["failed"] == 1
            (entry,) = client.result(job["id"])["results"]
            assert "BrokenProcessPool" in entry["failure"]["error"]
            assert entry["failure"]["traceback"]

            # The broken pool was discarded; the next submit rebuilds a
            # fresh one and succeeds on the same connection.
            job2 = client.submit(SMALL_SPEC, wait=True)
            assert job2["state"] == "done"
            assert job2["counts"].get("run") == 1
        assert server.stats["simulated"] == 1


class _FailingStore(RunStore):
    """A store whose write-back always fails (read side untouched)."""

    def put(self, spec, result):
        raise OSError("disk full (injected)")


def test_store_put_failure_surfaces_tag_and_keeps_result(tmp_path):
    events = []
    with serve_tmp(store=_FailingStore(tmp_path / "bad-store")) as (
            server, sock):
        with ServeClient(sock) as client:
            job = client.submit(SMALL_SPEC, stream=True,
                                on_event=events.append)
            # The write-back failed, the simulation did not: the job is
            # done and the result is served from the job table.
            assert job["state"] == "done"
            assert job["counts"].get("store-fail") == 1
            outcomes = client.outcomes(job["id"])
            assert outcomes[SMALL_SPEC].execution_time() > 0
        assert server.stats["store_failures"] == 1
        assert server.stats["simulated"] == 1

    tags = [e for e in events if e["ev"] == "cell"
            and e["name"] == "store-fail"]
    assert len(tags) == 1
    assert tags[0]["spec_hash"] == SMALL_SPEC.spec_hash()
    assert "disk full (injected)" in tags[0]["error"]


def test_event_bus_observers_do_not_grow_across_jobs():
    """1000 sequential streamed jobs: observer lists stay empty.

    Drives the protocol layer directly (no sockets) so each iteration
    exercises exactly the subscribe -> pump -> unsubscribe path a
    streaming client takes, at in-memory speed.
    """

    async def scenario():
        server = JobServer("unused.sock", store=None, backend="inline",
                           workers=4, max_queued=8, keep_jobs=8,
                           worker_fn=fast_worker)
        frames = []

        async def send(frame):
            frames.append(frame)

        submit = {"op": "submit", "specs": [SMALL_SPEC.to_dict()],
                  "stream": True}
        for i in range(1000):
            subscriptions = []
            keep_open = await server._handle_frame(dict(submit), send,
                                                   subscriptions)
            assert keep_open
            # The invariant under test: nothing this job subscribed
            # outlives it, on either bus list.
            assert not subscriptions
            assert not server.bus.observers
            assert not server.bus.kind_observers

        await server.drain()
        assert not server._inflight
        assert not server._refs
        assert server.stats["submitted"] == 1000
        assert len(server.jobs) <= 8
        done = [f for f in frames
                if f.get("ok") and f.get("job", {}).get("state") == "done"]
        assert len(done) == 1000

    asyncio.run(scenario())
