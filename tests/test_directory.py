"""Unit tests for the coherence directory and refetch counting."""

import pytest

from repro.coherence.directory import Directory
from repro.coherence.messages import MessageLog, MsgKind


@pytest.fixture
def directory():
    return Directory(n_nodes=4, chunks_per_page=32)


class TestCopysets:
    def test_first_read_is_not_refetch(self, directory):
        out = directory.fetch(1, chunk=0, page=0, is_write=False, threshold=0)
        assert not out.refetch
        assert directory.is_cached_by(0, 1)

    def test_second_read_by_same_node_is_refetch(self, directory):
        directory.fetch(1, 0, 0, False, 0)
        out = directory.fetch(1, 0, 0, False, 0)
        assert out.refetch

    def test_read_by_other_node_is_not_refetch(self, directory):
        directory.fetch(1, 0, 0, False, 0)
        out = directory.fetch(2, 0, 0, False, 0)
        assert not out.refetch
        assert directory.sharers(0) == [1, 2]

    def test_write_invalidates_other_sharers(self, directory):
        directory.fetch(1, 0, 0, False, 0)
        directory.fetch(2, 0, 0, False, 0)
        out = directory.fetch(3, 0, 0, True, 0)
        assert set(out.invalidations) == {1, 2}
        assert directory.sharers(0) == [3]

    def test_write_does_not_invalidate_self(self, directory):
        directory.fetch(1, 0, 0, False, 0)
        out = directory.fetch(1, 0, 0, True, 0)
        assert out.invalidations == ()

    def test_write_sets_owner(self, directory):
        directory.fetch(1, 0, 0, True, 0)
        assert directory.owner[0] == 1

    def test_read_after_remote_write_forwards(self, directory):
        directory.fetch(1, 0, 0, True, 0)
        out = directory.fetch(2, 0, 0, False, 0)
        assert out.forwarded
        assert out.prev_owner == 1
        assert 0 not in directory.owner  # clean after writeback

    def test_owner_rereading_does_not_forward(self, directory):
        directory.fetch(1, 0, 0, True, 0)
        out = directory.fetch(1, 0, 0, False, 0)
        assert not out.forwarded

    def test_write_after_remote_write_forwards_and_invalidates(self, directory):
        directory.fetch(1, 0, 0, True, 0)
        out = directory.fetch(2, 0, 0, True, 0)
        assert out.forwarded
        assert out.invalidations == (1,)
        assert directory.owner[0] == 2


class TestRefetchCounting:
    def test_counter_increments_on_refetch(self, directory):
        directory.fetch(1, 0, 0, False, threshold=10)
        directory.fetch(1, 0, 0, False, threshold=10)
        assert directory.refetches_of(0, 1) == 1

    def test_threshold_zero_disables_counting(self, directory):
        directory.fetch(1, 0, 0, False, threshold=0)
        directory.fetch(1, 0, 0, False, threshold=0)
        assert directory.refetches_of(0, 1) == 0
        assert directory.total_refetches == 1  # still counted globally

    def test_hint_fires_at_threshold(self, directory):
        directory.fetch(1, 0, 0, False, threshold=3)
        hints = []
        for _ in range(6):
            out = directory.fetch(1, 0, 0, False, threshold=3)
            hints.append(out.relocation_hint)
        # Counter: 1,2,3(hint+reset),1,2,3(hint+reset)
        assert hints == [False, False, True, False, False, True]

    def test_counter_resets_after_hint(self, directory):
        directory.fetch(1, 0, 0, False, threshold=2)
        directory.fetch(1, 0, 0, False, threshold=2)
        directory.fetch(1, 0, 0, False, threshold=2)
        assert directory.refetches_of(0, 1) == 0

    def test_counters_are_per_page_per_node(self, directory):
        for _ in range(3):
            directory.fetch(1, 0, 0, False, threshold=10)
            directory.fetch(2, 0, 0, False, threshold=10)
            directory.fetch(1, 32, 1, False, threshold=10)
        assert directory.refetches_of(0, 1) == 2
        assert directory.refetches_of(0, 2) == 2
        assert directory.refetches_of(1, 1) == 2

    def test_count_refetch_false_skips_counter(self, directory):
        directory.fetch(1, 0, 0, False, threshold=5)
        directory.fetch(1, 0, 0, False, threshold=5, count_refetch=False)
        assert directory.refetches_of(0, 1) == 0

    def test_reset_refetch(self, directory):
        directory.fetch(1, 0, 0, False, threshold=10)
        directory.fetch(1, 0, 0, False, threshold=10)
        directory.reset_refetch(0, 1)
        assert directory.refetches_of(0, 1) == 0

    def test_relocation_hint_counter(self, directory):
        for _ in range(4):
            directory.fetch(1, 0, 0, False, threshold=3)
        assert directory.relocation_hints == 1


class TestDropNodeFromPage:
    def test_drop_removes_from_all_chunks(self, directory):
        for chunk in (0, 1, 5):
            directory.fetch(1, chunk, 0, False, 0)
        dropped = directory.drop_node_from_page(1, 0)
        assert dropped == 3
        for chunk in (0, 1, 5):
            assert not directory.is_cached_by(chunk, 1)

    def test_drop_preserves_other_nodes(self, directory):
        directory.fetch(1, 0, 0, False, 0)
        directory.fetch(2, 0, 0, False, 0)
        directory.drop_node_from_page(1, 0)
        assert directory.is_cached_by(0, 2)

    def test_drop_clears_ownership(self, directory):
        directory.fetch(1, 0, 0, True, 0)
        directory.drop_node_from_page(1, 0)
        assert 0 not in directory.owner

    def test_drop_only_affects_given_page(self, directory):
        directory.fetch(1, 0, 0, False, 0)     # page 0
        directory.fetch(1, 32, 1, False, 0)    # page 1
        assert directory.drop_node_from_page(1, 0) == 1
        assert directory.is_cached_by(32, 1)

    def test_next_fetch_after_drop_is_cold(self, directory):
        directory.fetch(1, 0, 0, False, 0)
        directory.drop_node_from_page(1, 0)
        out = directory.fetch(1, 0, 0, False, 0)
        assert not out.refetch  # induced cold miss, not a refetch


class TestLogging:
    def test_messages_logged(self):
        log = MessageLog()
        d = Directory(4, 32, log=log)
        d.fetch(1, 0, 0, False, 0, home=2)
        kinds = [m.kind for m in log.messages]
        assert MsgKind.GET in kinds and MsgKind.DATA in kinds

    def test_invalidations_logged(self):
        log = MessageLog()
        d = Directory(4, 32, log=log)
        d.fetch(1, 0, 0, False, 0)
        d.fetch(2, 0, 0, True, 0)
        assert len(log.of_kind(MsgKind.INV)) == 1

    def test_hint_piggybacked_on_data(self):
        log = MessageLog()
        d = Directory(4, 32, log=log)
        d.fetch(1, 0, 0, False, 1)
        d.fetch(1, 0, 0, False, 1)  # refetch crosses threshold 1
        data = log.of_kind(MsgKind.DATA)
        assert data[-1].relocation_hint


class TestValidation:
    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            Directory(0, 32)
