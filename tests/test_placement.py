"""Tests for the alternative home-placement policies."""

import pytest

from repro.kernel.allocation import (HomeAllocator, RandomAllocator,
                                     RoundRobinAllocator, make_allocator)
from repro.sim.config import SystemConfig
from repro.sim.engine import simulate
from repro.harness.experiment import scaled_policy
from repro.workloads import synthetic


class TestRoundRobin:
    def test_strict_rotation(self):
        alloc = RoundRobinAllocator(4, 16)
        homes = [alloc.home_of(page, toucher=0) for page in range(8)]
        assert homes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_ignores_toucher(self):
        alloc = RoundRobinAllocator(4, 16)
        assert alloc.home_of(0, toucher=3) == 0

    def test_sticky(self):
        alloc = RoundRobinAllocator(4, 16)
        first = alloc.home_of(5, 0)
        assert alloc.home_of(5, 2) == first

    def test_perfectly_balanced(self):
        alloc = RoundRobinAllocator(4, 16)
        for page in range(16):
            alloc.home_of(page, 0)
        assert alloc.imbalance() == 0

    def test_bad_toucher_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinAllocator(4, 16).home_of(0, toucher=4)


class TestRandom:
    def test_deterministic(self):
        a = RandomAllocator(4, 64, seed=1)
        b = RandomAllocator(4, 64, seed=1)
        assert [a.home_of(p, 0) for p in range(64)] == \
            [b.home_of(p, 0) for p in range(64)]

    def test_seed_changes_layout(self):
        a = RandomAllocator(4, 64, seed=1)
        b = RandomAllocator(4, 64, seed=2)
        homes_a = [a.home_of(p, 0) for p in range(64)]
        homes_b = [b.home_of(p, 0) for p in range(64)]
        assert homes_a != homes_b

    def test_roughly_uniform(self):
        alloc = RandomAllocator(8, 800)
        for page in range(800):
            alloc.home_of(page, 0)
        counts = [alloc.pages_homed_at(n) for n in range(8)]
        assert min(counts) > 50  # 100 expected per node

    def test_sticky(self):
        alloc = RandomAllocator(4, 16)
        first = alloc.home_of(3, 1)
        assert alloc.home_of(3, 2) == first


class TestFactory:
    def test_names(self):
        assert isinstance(make_allocator("first-touch", 4, 16), HomeAllocator)
        assert isinstance(make_allocator("round-robin", 4, 16),
                          RoundRobinAllocator)
        assert isinstance(make_allocator("random", 4, 16), RandomAllocator)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown home placement"):
            make_allocator("best-fit", 4, 16)


class TestEndToEnd:
    def test_first_touch_localises_better(self):
        """The canonical placement result: first-touch keeps a node's own
        data local; blind policies send ~(n-1)/n of it remote."""
        wl = synthetic.generate(n_nodes=4, home_pages_per_node=8,
                                remote_pages_per_node=8, sweeps=4,
                                home_lines_per_sweep=128, seed=2)
        results = {}
        for placement in ("first-touch", "round-robin"):
            cfg = SystemConfig(n_nodes=4, memory_pressure=0.5,
                               home_placement=placement)
            results[placement] = simulate(wl, scaled_policy("CCNUMA"),
                                          cfg).aggregate()
        assert results["first-touch"].HOME > results["round-robin"].HOME
        assert results["first-touch"].total_cycles() < \
            results["round-robin"].total_cycles()

    def test_config_validates_placement_lazily(self):
        # Unknown placement surfaces when the machine is built.
        wl = synthetic.generate(n_nodes=2, home_pages_per_node=4,
                                remote_pages_per_node=4, sweeps=2,
                                home_lines_per_sweep=16)
        cfg = SystemConfig(n_nodes=2, home_placement="best-fit")
        with pytest.raises(ValueError):
            simulate(wl, scaled_policy("CCNUMA"), cfg)
