"""Shared fixtures: small configs, machines and workloads for fast tests."""

from __future__ import annotations

import pytest

from repro.core import make_policy
from repro.mem.address import AddressMap
from repro.sim.config import SystemConfig
from repro.sim.trace import TraceBuilder, WorkloadTraces
from repro.workloads.base import SyntheticGenerator, WorkloadSpec


@pytest.fixture(autouse=True)
def isolated_store_dir(tmp_path, monkeypatch):
    """Point the CLI's default result store at a per-test directory.

    Keeps tests from writing into (or reading stale results out of)
    the repo-level ``results/store`` cache.
    """
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    return tmp_path / "store"


@pytest.fixture(autouse=True)
def isolated_trace_dir(tmp_path, monkeypatch):
    """Same isolation for the workload trace cache (``results/traces``).

    Also drops the per-process trace memo around each test so no test
    observes traces another test's store resolved.
    """
    from repro.runtime.tracecache import clear_trace_memo

    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
    clear_trace_memo()
    yield tmp_path / "traces"
    clear_trace_memo()


@pytest.fixture(autouse=True)
def isolated_obs_dir(tmp_path, monkeypatch):
    """Same isolation for run telemetry (``results/obs``)."""
    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
    return tmp_path / "obs"


@pytest.fixture
def amap() -> AddressMap:
    return AddressMap()


@pytest.fixture
def config() -> SystemConfig:
    """4-node config with contention off for deterministic latencies."""
    return SystemConfig(n_nodes=4, memory_pressure=0.5,
                        model_contention=False)


@pytest.fixture
def config8() -> SystemConfig:
    return SystemConfig(n_nodes=8, memory_pressure=0.5)


def make_micro_workload(n_nodes: int = 2, lines: int = 8,
                        home_pages: int = 2) -> WorkloadTraces:
    """Tiny hand-built workload: each node touches its own home pages,
    then node 1 reads node 0's first page."""
    amap = AddressMap()
    lpp = amap.lines_per_page
    traces = []
    for node in range(n_nodes):
        b = TraceBuilder()
        first = node * home_pages
        for page in range(first, first + home_pages):
            b.read(page * lpp)
        b.barrier(0)
        if node == 1:
            for line in range(lines):
                b.read(line)  # page 0, homed at node 0
        b.compute(10)
        b.barrier(1)
        traces.append(b.build())
    return WorkloadTraces("micro", traces, home_pages_per_node=home_pages,
                          total_shared_pages=n_nodes * home_pages)


@pytest.fixture
def micro_workload() -> WorkloadTraces:
    return make_micro_workload()


def tiny_spec(**overrides) -> WorkloadSpec:
    params = dict(
        name="tiny", n_nodes=4, home_pages_per_node=8,
        remote_pages_per_node=12, hot_fraction=0.75, sweeps=4,
        lines_per_visit=8, write_fraction=0.2, compute_per_ref=2.0,
        local_cycles_per_sweep=100, home_lines_per_sweep=32,
        line_repeats=1, seed=11,
    )
    params.update(overrides)
    return WorkloadSpec(**params)


@pytest.fixture
def tiny_workload() -> WorkloadTraces:
    return SyntheticGenerator(tiny_spec()).generate()


@pytest.fixture(params=["CCNUMA", "SCOMA", "RNUMA", "VCNUMA", "ASCOMA"])
def any_policy(request):
    kwargs = {
        "RNUMA": dict(threshold=8),
        "VCNUMA": dict(threshold=8, break_even=4, increment=4),
        "ASCOMA": dict(threshold=8, increment=4),
    }.get(request.param, {})
    return make_policy(request.param, **kwargs)
