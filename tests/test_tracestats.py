"""Tests for the workload trace-analysis module."""

import pytest

from repro.sim.trace import TraceBuilder, WorkloadTraces
from repro.sim.tracestats import (analyze, node_summary,
                                  page_reference_counts,
                                  page_reuse_distances, sharing_profile,
                                  working_set_curve)
from repro.workloads import em3d, lu, migratory

LPP = 128


def trace_of_pages(pages):
    b = TraceBuilder()
    for page in pages:
        b.read(page * LPP)
    b.barrier(0)
    return b.build()


class TestReferenceCounts:
    def test_counts(self):
        t = trace_of_pages([1, 2, 1, 1, 3])
        assert page_reference_counts(t, LPP) == {1: 3, 2: 1, 3: 1}

    def test_empty_trace(self):
        b = TraceBuilder()
        b.barrier(0)
        assert page_reference_counts(b.build(), LPP) == {}

    def test_ignores_non_memory_events(self):
        b = TraceBuilder()
        b.compute(100)
        b.read(0)
        b.local(50)
        b.barrier(0)
        assert page_reference_counts(b.build(), LPP) == {0: 1}


class TestReuseDistances:
    def test_immediate_reuse_is_zero(self):
        t = trace_of_pages([1, 1])
        assert page_reuse_distances(t, LPP).tolist() == [0]

    def test_one_intervening_page(self):
        t = trace_of_pages([1, 2, 1])
        assert page_reuse_distances(t, LPP).tolist() == [1]

    def test_first_touches_excluded(self):
        t = trace_of_pages([1, 2, 3])
        assert len(page_reuse_distances(t, LPP)) == 0

    def test_classic_sequence(self):
        # a b c a: distance of final a = 2 distinct pages between.
        t = trace_of_pages([1, 2, 3, 1])
        assert page_reuse_distances(t, LPP).tolist() == [2]

    def test_cyclic_sweep_distance_is_set_size_minus_one(self):
        pages = [1, 2, 3, 4] * 3
        t = trace_of_pages(pages)
        distances = page_reuse_distances(t, LPP)
        assert set(distances.tolist()) == {3}


class TestWorkingSetCurve:
    def test_stable_working_set(self):
        t = trace_of_pages([1, 2, 3, 4] * 10)
        curve = working_set_curve(t, LPP, n_windows=4)
        assert all(size == 4 for _, size in curve)

    def test_phased_working_set(self):
        t = trace_of_pages([1] * 20 + [2] * 20)
        curve = working_set_curve(t, LPP, n_windows=2)
        assert [size for _, size in curve] == [1, 1]

    def test_empty(self):
        b = TraceBuilder()
        b.barrier(0)
        assert working_set_curve(b.build(), LPP) == []


class TestSharingProfile:
    def test_private_and_shared(self):
        t0 = trace_of_pages([0, 1])   # touches 0,1
        t1 = trace_of_pages([1, 2])   # touches 1,2
        wl = WorkloadTraces("x", [t0, t1], 1, 4)
        profile = sharing_profile(wl, LPP)
        assert profile == {1: 2, 2: 1}  # pages 0,2 private; page 1 shared

    def test_migratory_workload_is_pairwise(self):
        wl = migratory.generate(scale=0.25, sweeps=4)
        profile = sharing_profile(wl, LPP)
        # Producer + one consumer: every shared page has exactly 2 touchers.
        assert set(profile) == {2}

    def test_em3d_has_multi_sharers(self):
        wl = em3d.generate(scale=0.25)
        profile = sharing_profile(wl, LPP)
        assert max(profile) >= 3  # home + both neighbours


class TestAnalyze:
    def test_node_summary_fields(self):
        wl = em3d.generate(scale=0.25)
        summary = node_summary(wl, 0, LPP)
        assert summary["remote_pages"] > 0
        assert summary["shared_refs"] > 0
        assert summary["p90_reuse_distance"] >= summary["median_reuse_distance"]

    def test_analyze_ideal_pressure_matches_spec(self):
        wl = em3d.generate(scale=0.25)
        report = analyze(wl, LPP)
        spec_ideal = wl.params["spec"]["ideal_pressure"]
        assert report["ideal_pressure"] == pytest.approx(spec_ideal, abs=0.1)

    def test_lu_phases_visible_in_working_set(self):
        """lu's phased access shows much smaller window working sets than
        its total remote footprint."""
        wl = lu.generate(scale=0.35)
        curve = working_set_curve(wl.traces[0], LPP, n_windows=18)
        total_pages = len(wl.traces[0].pages_touched(LPP))
        # Skip the prologue window (touches all home pages at once).
        steady = [size for _, size in curve[2:]]
        assert max(steady) < total_pages / 2
