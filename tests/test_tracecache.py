"""Trace cache: bit-exactness, invalidation, scheduling, determinism.

The cache's contract is that it changes *when* traces are built, never
*what* is built: every test here either proves a cached workload is
bit-identical to a regenerated one, or proves that anything less
(corruption, stale format, foreign file) reads as a miss and falls
back to regeneration.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.sim.trace as trace_mod
from repro.harness.experiment import get_workload
from repro.harness.parallel import run_cells
from repro.runtime import (RunSpec, TraceStore, clear_trace_memo, execute,
                           fetch_traces, lpt_order, spec_cost,
                           submit_chunksize, trace_key, use_trace_store)

APP = "em3d"
SCALE = 0.2


def _store(tmp_path) -> TraceStore:
    return TraceStore(tmp_path / "traces")


class TestTraceKey:
    def test_stable_across_calls(self):
        assert trace_key(APP, SCALE) == trace_key(APP, SCALE)

    def test_sensitive_to_inputs(self):
        baseline = trace_key(APP, SCALE)
        assert trace_key("fft", SCALE) != baseline
        assert trace_key(APP, 0.3) != baseline
        assert trace_key(APP, SCALE, seed=123) != baseline

    def test_sensitive_to_format_version(self, monkeypatch):
        baseline = trace_key(APP, SCALE)
        import repro.runtime.tracecache as tc
        monkeypatch.setattr(tc, "TRACE_FORMAT_VERSION",
                            trace_mod.TRACE_FORMAT_VERSION + 1)
        assert trace_key(APP, SCALE) != baseline


class TestBitExactness:
    def test_cached_equals_regenerated(self, tmp_path):
        """The acceptance-criterion test: disk round-trip is identical."""
        store = _store(tmp_path)
        generated = get_workload(APP, SCALE)
        store.put(APP, SCALE, generated)
        cached = store.get(APP, SCALE)
        assert cached is not None
        assert cached.name == generated.name
        assert cached.n_nodes == generated.n_nodes
        assert cached.home_pages_per_node == generated.home_pages_per_node
        assert cached.total_shared_pages == generated.total_shared_pages
        for cold, warm in zip(generated.traces, cached.traces):
            assert cold.kinds.dtype == warm.kinds.dtype
            assert cold.args.dtype == warm.args.dtype
            assert np.array_equal(cold.kinds, warm.kinds)
            assert np.array_equal(cold.args, warm.args)
        assert cached.content_hash() == generated.content_hash()

    def test_fetch_miss_generates_and_writes_back(self, tmp_path):
        store = _store(tmp_path)
        with use_trace_store(store):
            fetched = fetch_traces(APP, SCALE)
        assert store.writes == 1
        assert fetched.content_hash() == get_workload(APP, SCALE).content_hash()
        assert store.path_for(APP, SCALE).exists()

    def test_fetch_hits_disk_after_memo_drop(self, tmp_path):
        store = _store(tmp_path)
        with use_trace_store(store):
            first = fetch_traces(APP, SCALE)
            clear_trace_memo()
            second = fetch_traces(APP, SCALE)
        assert store.hits == 1
        assert second is not first  # reloaded, not memoised
        assert second.content_hash() == first.content_hash()

    def test_memo_returns_same_object(self, tmp_path):
        store = _store(tmp_path)
        with use_trace_store(store):
            assert fetch_traces(APP, SCALE) is fetch_traces(APP, SCALE)


class TestInvalidation:
    def test_bad_magic_is_a_miss(self, tmp_path):
        store = _store(tmp_path)
        store.root.mkdir(parents=True)
        store.path_for(APP, SCALE).write_bytes(b"JUNK" * 64)
        assert store.get(APP, SCALE) is None
        assert store.misses == 1

    def test_truncated_file_is_a_miss(self, tmp_path):
        store = _store(tmp_path)
        store.put(APP, SCALE, get_workload(APP, SCALE))
        path = store.path_for(APP, SCALE)
        path.write_bytes(path.read_bytes()[:100])
        assert store.get(APP, SCALE) is None

    def test_stale_format_version_falls_back_to_regeneration(
            self, tmp_path, monkeypatch):
        store = _store(tmp_path)
        store.root.mkdir(parents=True)
        wl = get_workload(APP, SCALE)
        # Craft an entry written by a "future" (or past) trace format at
        # the path the current key resolves to.
        with monkeypatch.context() as m:
            m.setattr(trace_mod, "TRACE_FORMAT_VERSION",
                      trace_mod.TRACE_FORMAT_VERSION + 1)
            wl.save(str(store.path_for(APP, SCALE)))
        assert store.get(APP, SCALE) is None
        with use_trace_store(store):
            fetched = fetch_traces(APP, SCALE)
        # Regenerated, bit-identical, and the stale entry was rewritten.
        assert fetched.content_hash() == wl.content_hash()
        assert store.writes == 1
        assert store.get(APP, SCALE) is not None

    def test_load_rejects_versionless_header(self, tmp_path):
        """Files from before format versioning read as version 0."""
        wl = get_workload(APP, SCALE)
        path = tmp_path / "old.trace"
        wl.save(str(path))
        raw = path.read_bytes()
        stale = raw.replace(b"'format_version': 1", b"'format_version': 0", 1)
        assert stale != raw
        path.write_bytes(stale)
        with pytest.raises(ValueError, match="format version 0"):
            trace_mod.WorkloadTraces.load(str(path))

    def test_wrong_app_under_right_name_is_a_miss(self, tmp_path):
        store = _store(tmp_path)
        store.root.mkdir(parents=True)
        get_workload("fft", SCALE).save(str(store.path_for(APP, SCALE)))
        assert store.get(APP, SCALE) is None


class TestMaintenance:
    def test_entries_and_clear(self, tmp_path):
        store = _store(tmp_path)
        store.put(APP, SCALE, get_workload(APP, SCALE))
        (entry,) = store.entries()
        assert entry["name"] == APP
        assert entry["events"] > 0
        info = store.describe()
        assert info["entries"] == 1 and info["bytes"] > 0
        assert store.clear() == 1
        assert store.entries() == []

    def test_describe_empty(self, tmp_path):
        info = _store(tmp_path).describe()
        assert info["entries"] == 0 and info["bytes"] == 0


class TestSoaSidecar:
    """The ``.soa`` sidecar is strictly additive: attaching one must
    be observationally identical to the in-memory decode it replaces,
    and *anything* wrong with it — missing, corrupt, truncated, stale
    version, foreign workload — is a silent decode miss, never an
    error."""

    def _warm(self, tmp_path):
        store = _store(tmp_path)
        store.put(APP, SCALE, get_workload(APP, SCALE))
        return store

    def test_put_writes_sidecar_and_get_attaches(self, tmp_path):
        store = self._warm(tmp_path)
        assert store.path_for(APP, SCALE).with_suffix(".soa").exists()
        warm = store.get(APP, SCALE)
        assert store.soa_attaches == 1
        kinds, args, offsets, lengths, lo, hi = warm._soa_cache
        assert isinstance(kinds, np.memmap) and isinstance(args, np.memmap)
        # Bit-identical to the decode a sidecar-less load would run.
        ck, ca, co, cl, clo, chi = get_workload(APP, SCALE).soa()
        assert np.array_equal(kinds, ck) and np.array_equal(args, ca)
        assert np.array_equal(offsets, co) and np.array_equal(lengths, cl)
        assert (lo, hi) == (clo, chi)

    def test_missing_sidecar_is_a_decode_miss(self, tmp_path):
        store = self._warm(tmp_path)
        store.path_for(APP, SCALE).with_suffix(".soa").unlink()
        warm = store.get(APP, SCALE)
        assert warm is not None and store.soa_attaches == 0
        # The in-memory decode still runs, unchanged.
        ck, ca, *_ = get_workload(APP, SCALE).soa()
        kinds, args, *_ = warm.soa()
        assert np.array_equal(kinds, ck) and np.array_equal(args, ca)

    @pytest.mark.parametrize("damage", ["garbage", "truncated"])
    def test_damaged_sidecar_is_a_decode_miss(self, tmp_path, damage):
        store = self._warm(tmp_path)
        soa_path = store.path_for(APP, SCALE).with_suffix(".soa")
        if damage == "garbage":
            soa_path.write_bytes(b"JUNK" * 32)
        else:
            soa_path.write_bytes(soa_path.read_bytes()[:64])
        warm = store.get(APP, SCALE)
        assert warm is not None and store.soa_attaches == 0
        assert getattr(warm, "_soa_cache", None) is None

    def test_stale_soa_version_is_a_decode_miss(self, tmp_path, monkeypatch):
        import repro.runtime.tracecache as tc
        store = self._warm(tmp_path)
        monkeypatch.setattr(tc, "SOA_FORMAT_VERSION",
                            tc.SOA_FORMAT_VERSION + 1)
        warm = store.get(APP, SCALE)
        assert warm is not None and store.soa_attaches == 0

    def test_foreign_workload_sidecar_is_a_decode_miss(self, tmp_path):
        """A sidecar whose content hash does not match the trace it
        sits next to (e.g. a half-synced cache dir) must not attach."""
        import repro.runtime.tracecache as tc
        store = self._warm(tmp_path)
        assert tc.write_soa_sidecar(store.path_for(APP, SCALE),
                                    get_workload("fft", SCALE))
        warm = store.get(APP, SCALE)
        assert warm is not None and store.soa_attaches == 0

    def test_sidecar_write_failure_is_non_fatal(self, tmp_path):
        import repro.runtime.tracecache as tc
        missing = tmp_path / "nowhere" / "x.trace"
        assert tc.write_soa_sidecar(missing, get_workload(APP, SCALE)) \
            is False

    def test_clear_and_describe_cover_sidecars(self, tmp_path):
        store = self._warm(tmp_path)
        (entry,) = store.entries()
        assert entry["soa"] is True
        info = store.describe()
        assert info["soa_sidecars"] == 1
        assert info["soa_format_version"] >= 1
        assert store.clear() == 1
        assert not list(store.root.glob("*.soa"))

    def test_vector_replay_reads_memmapped_sidecar(self, tmp_path):
        """End-to-end: a read-only memory-mapped sidecar must feed the
        compiled kernel and produce the reference bytes."""
        from repro.harness.experiment import scaled_policy
        from repro.sim.config import SystemConfig
        from repro.sim.engine import Engine
        store = self._warm(tmp_path)
        warm = store.get(APP, SCALE)
        assert isinstance(warm._soa_cache[0], np.memmap)

        def run(wl, **kwargs):
            cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.7)
            return Engine(wl, scaled_policy("ASCOMA"), config=cfg,
                          **kwargs).run().to_dict()

        vector = run(warm, vector_path=True)
        reference = run(get_workload(APP, SCALE), slow_path=True)
        assert vector == reference


class TestCostModel:
    def test_lpt_orders_costliest_first(self):
        specs = [RunSpec("fft", "ASCOMA", 0.7),
                 RunSpec("ocean", "ASCOMA", 0.7),
                 RunSpec("fft", "CCNUMA", 0.7)]
        events_of = {("fft", 0.5): 100, ("ocean", 0.5): 1000}
        ordered = lpt_order(specs, events_of)
        assert [s.app for s in ordered] == ["ocean", "fft", "fft"]
        # Among equal event counts the heavier architecture goes first.
        assert ordered[1].arch == "CCNUMA"

    def test_lpt_unknown_workload_sorts_last(self):
        good = RunSpec("fft", "ASCOMA", 0.7)
        bad = RunSpec("nope", "ASCOMA", 0.7)
        ordered = lpt_order([bad, good], {("fft", 0.5): 10})
        assert ordered == [good, bad]

    def test_spec_cost_uses_arch_weight(self):
        base = spec_cost(RunSpec("fft", "ASCOMA", 0.7), events=1000)
        heavy = spec_cost(RunSpec("fft", "CCNUMA", 0.7), events=1000)
        assert heavy > base == 1000

    def test_vector_weight_table_selected_explicitly(self):
        from repro.runtime.costs import VECTOR_ARCH_WEIGHTS
        base = spec_cost(RunSpec("fft", "ASCOMA", 0.7), events=1000,
                         vector=True)
        heavy = spec_cost(RunSpec("fft", "CCNUMA", 0.7), events=1000,
                          vector=True)
        assert base == 1000
        assert heavy == 1000 * VECTOR_ARCH_WEIGHTS["CCNUMA"]
        # The vector table reshuffles ranks, it does not just rescale:
        # CC-NUMA's relative cost is far higher through the kernel.
        assert heavy / base > spec_cost(
            RunSpec("fft", "CCNUMA", 0.7), events=1000, vector=False) / 1000

    def test_substrate_probe_respects_pinned_off(self, monkeypatch):
        from repro.runtime import costs
        monkeypatch.setenv("REPRO_VECTOR_PATH", "0")
        assert costs._vector_substrate() is False

    def test_lpt_vector_flag_changes_ranks_not_membership(self):
        specs = [RunSpec("fft", arch, 0.7)
                 for arch in ("ASCOMA", "CCNUMA", "SCOMA")]
        events_of = {("fft", 0.5): 1000}
        scalar = lpt_order(specs, events_of, vector=False)
        vector = lpt_order(specs, events_of, vector=True)
        assert sorted(s.arch for s in scalar) == \
            sorted(s.arch for s in vector)
        assert vector[0].arch == "CCNUMA"  # the vector outlier leads

    def test_submit_chunksize(self):
        assert submit_chunksize(90, 1) == 22
        assert submit_chunksize(90, 8) == 2
        assert submit_chunksize(3, 8) == 1  # never zero
        with pytest.raises(ValueError):
            submit_chunksize(10, 0)


class TestCrossProcessDeterminism:
    """Satellite: parallel and serial payloads must be identical."""

    CELLS = [(app, arch, 0.5, SCALE)
             for app in ("fft", "em3d") for arch in ("ASCOMA", "SCOMA")]

    @pytest.mark.parametrize("cache", ["without-cache", "with-cache"])
    def test_parallel_matches_serial_to_dict(self, tmp_path, cache):
        store = _store(tmp_path) if cache == "with-cache" else None
        with use_trace_store(store):
            serial = run_cells(self.CELLS, parallel=False, store=None)
            parallel = run_cells(self.CELLS, max_workers=2, store=None)
        for cell in self.CELLS:
            assert serial[cell].to_dict() == parallel[cell].to_dict(), cell

    def test_legacy_pool_matches_new_dispatch(self, tmp_path):
        specs = [RunSpec(app, arch, 0.5, SCALE)
                 for app, arch, _, _ in self.CELLS[:2]]
        with use_trace_store(_store(tmp_path)):
            new = execute(specs, store=None, parallel=True, max_workers=2)
            legacy = execute(specs, store=None, parallel=True, max_workers=2,
                             legacy_pool=True)
        for spec in specs:
            assert new[spec].to_dict() == legacy[spec].to_dict()


class TestConcurrentMutation:
    """Satellite: store scans racing ``trace-clear`` must skip vanished
    files, never crash.  The deterministic tests force the exact
    interleaving (file deleted between a successful load/glob and the
    following ``stat``); the threaded test hammers the real one."""

    def test_entries_skips_file_deleted_after_load(self, tmp_path,
                                                   monkeypatch):
        import repro.runtime.tracecache as tc
        store = _store(tmp_path)
        store.put(APP, SCALE, get_workload(APP, SCALE))
        store.put("fft", SCALE, get_workload("fft", SCALE))
        real_load = trace_mod.WorkloadTraces.load
        deleted = []

        def racing_load(path):
            wl = real_load(path)
            if not deleted:  # first artifact vanishes right after load
                import pathlib
                p = pathlib.Path(path)
                p.unlink()
                p.with_suffix(".soa").unlink(missing_ok=True)
                deleted.append(path)
            return wl

        monkeypatch.setattr(tc.WorkloadTraces, "load",
                            staticmethod(racing_load))
        entries = store.entries()
        assert len(entries) == 1  # vanished file skipped, not an error
        assert deleted

    def _racing_root(self, store):
        real_root = store.root

        class RacingRoot:
            """Every glob result is deleted before the caller sees it —
            the worst-case clear() interleaving."""

            def glob(self, pattern):
                for p in list(real_root.glob(pattern)):
                    p.unlink(missing_ok=True)
                    yield p

            def is_dir(self):
                return True

            def __str__(self):
                return str(real_root)

        return RacingRoot()

    def test_size_bytes_counts_vanished_files_as_zero(self, tmp_path):
        store = _store(tmp_path)
        store.put(APP, SCALE, get_workload(APP, SCALE))
        assert store.size_bytes() > 0
        store.root = self._racing_root(store)
        assert store.size_bytes() == 0

    def test_describe_survives_concurrent_clear(self, tmp_path):
        store = _store(tmp_path)
        store.put(APP, SCALE, get_workload(APP, SCALE))
        store.root = self._racing_root(store)
        info = store.describe()
        assert info["bytes"] == 0  # everything vanished mid-scan

    def test_entries_during_clear_threaded(self, tmp_path):
        """The reported crash: `repro store trace-list` concurrent with
        `repro store trace-clear` raised FileNotFoundError from the
        unguarded stat()."""
        import threading
        store = _store(tmp_path)
        wl = get_workload(APP, SCALE)
        stop = threading.Event()
        errors = []

        def churn():
            while not stop.is_set():
                store.put(APP, SCALE, wl)
                store.clear()

        worker = threading.Thread(target=churn)
        worker.start()
        try:
            for _ in range(50):
                try:
                    store.entries()
                    store.size_bytes()
                    store.describe()
                except Exception as exc:  # noqa: BLE001 - the assertion
                    errors.append(exc)
                    break
        finally:
            stop.set()
            worker.join()
        assert not errors, f"store scan crashed during clear: {errors[0]!r}"
