"""Tests for the runtime layer: RunSpec hashing, RunStore, executor."""

import json

import pytest

from repro.harness.experiment import run_app
from repro.harness.parallel import run_cells
from repro.runtime import (RunFailure, RunSpec, RunStore, execute,
                           execute_spec, get_default_store, run_spec,
                           use_store)
from repro.runtime import store as store_mod
from repro.sim.stats import RunResult

SCALE = 0.1
SPEC = RunSpec("fft", "ASCOMA", 0.5, SCALE)


@pytest.fixture
def exec_counter(monkeypatch):
    """Count actual simulation executions (store hits don't execute)."""
    calls = []
    real = RunSpec.execute

    def counting(self, check=False):
        calls.append(self)
        return real(self, check=check)

    monkeypatch.setattr(RunSpec, "execute", counting)
    return calls


class TestRunSpec:
    def test_arch_canonicalised(self):
        assert RunSpec("fft", "as-coma", 0.5) == RunSpec("fft", "ASCOMA", 0.5)
        assert (RunSpec("fft", "ccnuma_mig", 0.5).spec_hash()
                == RunSpec("fft", "CCNUMAMIG", 0.5).spec_hash())

    def test_override_order_does_not_change_hash(self):
        a = RunSpec.make("em3d", "ASCOMA", 0.7,
                         policy_overrides={"threshold": 8, "increment": 4})
        b = RunSpec.make("em3d", "ASCOMA", 0.7,
                         policy_overrides={"increment": 4, "threshold": 8})
        assert a == b and a.spec_hash() == b.spec_hash()

    def test_distinct_specs_distinct_hashes(self):
        seen = {RunSpec("fft", "ASCOMA", p, s).spec_hash()
                for p in (0.1, 0.5, 0.9) for s in (0.1, 0.5)}
        assert len(seen) == 6

    def test_distinct_quanta_distinct_store_keys(self, tmp_path):
        """The quantum changes event interleaving, so cached results
        must not be shared across quanta (the PR-1 cache-collision
        fix): distinct quanta hash -- and therefore store -- apart."""
        default = RunSpec.make("fft", "ASCOMA", 0.5, SCALE)
        q500 = RunSpec.make("fft", "ASCOMA", 0.5, SCALE, quantum=500)
        q900 = RunSpec.make("fft", "ASCOMA", 0.5, SCALE, quantum=900)
        assert len({s.spec_hash() for s in (default, q500, q900)}) == 3
        store = RunStore(tmp_path)
        store.put(q500, q500.execute())
        assert q500 in store
        assert default not in store  # a hit here would replay the wrong run
        assert q900 not in store

    def test_dict_roundtrip(self):
        spec = RunSpec.make("lu", "vcnuma", 0.9, 0.25,
                            policy_overrides={"threshold": 8},
                            config_overrides={"l1_ways": 2}, quantum=500)
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()
        json.dumps(spec.to_dict())  # JSON-compatible

    def test_cell_roundtrip(self):
        cell = ("fft", "SCOMA", 0.9, 0.2)
        assert RunSpec.from_cell(cell).cell() == cell

    def test_label_names_the_cell(self):
        assert "fft/ASCOMA@50%" in SPEC.label()

    def test_execute_applies_config_overrides(self):
        base = RunSpec("fft", "CCNUMA", 0.5, SCALE).execute()
        quiet = RunSpec.make("fft", "CCNUMA", 0.5, SCALE,
                             config_overrides={"model_contention": False})
        result = quiet.execute()
        # contention-free run is strictly faster than the contended one
        assert result.execution_time() < base.execution_time()


class TestRunStore:
    def test_empty_store_misses(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.get(SPEC) is None
        assert SPEC not in store
        assert store.misses == 1

    def test_put_get_preserves_everything(self, tmp_path):
        result = SPEC.execute()
        result.extra["marker"] = {"nested": 7}
        store = RunStore(tmp_path)
        store.put(SPEC, result)
        again = store.get(SPEC)
        assert SPEC in store
        assert again.architecture == result.architecture
        assert again.workload == result.workload
        assert again.pressure == result.pressure
        assert again.extra == result.extra
        # every NodeStats slot survives, node by node
        assert [s.as_dict() for s in again.node_stats] \
            == [s.as_dict() for s in result.node_stats]
        assert again.execution_time() == result.execution_time()

    def test_store_version_mismatch_is_a_miss(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path)
        store.put(SPEC, SPEC.execute())
        monkeypatch.setattr(store_mod, "STORE_VERSION", 999)
        assert store.get(SPEC) is None

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        store = RunStore(tmp_path)
        path = store.path_for(SPEC)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        assert store.get(SPEC) is None

    def test_foreign_spec_in_artifact_is_a_miss(self, tmp_path):
        store = RunStore(tmp_path)
        path = store.put(SPEC, SPEC.execute())
        payload = json.loads(path.read_text())
        payload["spec"]["pressure"] = 0.9  # simulated hash collision
        path.write_text(json.dumps(payload))
        assert store.get(SPEC) is None

    def test_entries_and_clear(self, tmp_path):
        store = RunStore(tmp_path)
        result = SPEC.execute()
        store.put(SPEC, result)
        store.put(RunSpec("fft", "CCNUMA", 0.5, SCALE), result)
        entries = store.entries()
        assert len(entries) == 2
        assert {e["spec"]["arch"] for e in entries} == {"ASCOMA", "CCNUMA"}
        assert store.clear() == 2
        assert store.entries() == []

    def test_use_store_restores_previous(self, tmp_path):
        outer = RunStore(tmp_path / "a")
        inner = RunStore(tmp_path / "b")
        with use_store(outer):
            with use_store(inner):
                assert get_default_store() is inner
            assert get_default_store() is outer
        assert get_default_store() is None


class TestCaching:
    def test_cache_round_trip_end_to_end(self, tmp_path, exec_counter):
        """Acceptance: 2nd run of the same spec performs zero simulations
        and returns an identical RunResult."""
        store = RunStore(tmp_path)
        first = execute_spec(SPEC, store=store)
        assert len(exec_counter) == 1
        second = execute_spec(SPEC, store=store)
        assert len(exec_counter) == 1  # store hit: no new simulation
        assert second.to_dict() == first.to_dict()
        assert [s.as_dict() for s in second.node_stats] \
            == [s.as_dict() for s in first.node_stats]

    def test_refresh_resimulates_and_restores(self, tmp_path, exec_counter):
        store = RunStore(tmp_path)
        execute_spec(SPEC, store=store)
        execute_spec(SPEC, store=store, refresh=True)
        assert len(exec_counter) == 2
        assert store.writes == 2
        execute_spec(SPEC, store=store)  # refreshed artifact still serves
        assert len(exec_counter) == 2

    def test_run_app_uses_ambient_store(self, tmp_path, exec_counter):
        store = RunStore(tmp_path)
        with use_store(store):
            first = run_app("fft", "ascoma", 0.5, scale=SCALE)
            second = run_app("fft", "AS-COMA", 0.5, scale=SCALE)
        assert len(exec_counter) == 1
        assert second.to_dict() == first.to_dict()

    def test_no_store_means_no_caching(self, exec_counter):
        run_app("fft", "ccnuma", 0.5, scale=SCALE)
        run_app("fft", "ccnuma", 0.5, scale=SCALE)
        assert len(exec_counter) == 2


class TestFaultIsolation:
    BAD = RunSpec("fft", "BOGUS", 0.5, SCALE)
    GOOD = [RunSpec("fft", "CCNUMA", 0.5, SCALE),
            RunSpec("fft", "SCOMA", 0.5, SCALE)]

    def test_failing_cell_does_not_kill_the_sweep(self, tmp_path):
        """Acceptance: one bad cell -> others complete, failure names it."""
        store = RunStore(tmp_path)
        out = execute([self.GOOD[0], self.BAD, self.GOOD[1]],
                      store=store, parallel=False)
        failure = out[self.BAD]
        assert isinstance(failure, RunFailure)
        assert failure.spec == self.BAD
        assert "BOGUS" in failure.error
        assert "Traceback" in failure.traceback
        for spec in self.GOOD:
            assert isinstance(out[spec], RunResult)

    def test_rerun_simulates_only_failed_and_missing(self, tmp_path,
                                                     exec_counter):
        """Acceptance: resume touches only cells without stored results."""
        store = RunStore(tmp_path)
        execute([self.GOOD[0], self.BAD, self.GOOD[1]],
                store=store, parallel=False)
        executed_first = list(exec_counter)
        assert len(executed_first) == 3
        out = execute([self.GOOD[0], self.BAD, self.GOOD[1]],
                      store=store, parallel=False)
        # only the (still-failing) bad cell was re-attempted
        assert exec_counter[len(executed_first):] == [self.BAD]
        assert isinstance(out[self.BAD], RunFailure)
        for spec in self.GOOD:
            assert isinstance(out[spec], RunResult)

    def test_pool_path_isolates_failures_too(self):
        out = execute([self.GOOD[0], self.BAD, self.GOOD[1]],
                      parallel=True, max_workers=2)
        assert isinstance(out[self.BAD], RunFailure)
        assert all(isinstance(out[s], RunResult) for s in self.GOOD)

    def test_retry_recovers_transient_failures(self, monkeypatch):
        attempts = []
        real = RunSpec.execute

        def flaky(spec, check=False):
            attempts.append(spec)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return real(spec, check=check)

        monkeypatch.setattr(RunSpec, "execute", flaky)
        assert isinstance(run_spec(self.GOOD[0], retries=0), RunFailure)
        attempts.clear()
        out = run_spec(self.GOOD[0], retries=1)
        assert isinstance(out, RunResult)
        assert len(attempts) == 2


class TestDedupe:
    def test_duplicate_cells_simulated_once(self, exec_counter):
        c1 = ("fft", "ascoma", 0.5, SCALE)
        c2 = ("fft", "AS-COMA", 0.5, SCALE)  # same cell, spelled differently
        out = run_cells([c1, c2, c1], parallel=False)
        assert len(exec_counter) == 1
        assert out[c1].to_dict() == out[c2].to_dict()

    def test_execute_fans_duplicates_back_out(self, exec_counter):
        out = execute([SPEC, RunSpec("fft", "as-coma", 0.5, SCALE)],
                      parallel=False)
        assert len(exec_counter) == 1
        assert len(out) == 1  # canonically the same spec
