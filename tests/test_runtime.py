"""Tests for the runtime layer: RunSpec hashing, RunStore, executor."""

import json

import pytest

from repro.harness.experiment import run_app
from repro.harness.parallel import run_cells
from repro.runtime import (RunFailure, RunSpec, RunStore, execute,
                           execute_spec, get_default_store, log_progress,
                           run_spec, use_store)
from repro.runtime import store as store_mod
from repro.sim.stats import RunResult

SCALE = 0.1
SPEC = RunSpec("fft", "ASCOMA", 0.5, SCALE)


@pytest.fixture
def exec_counter(monkeypatch):
    """Count actual simulation executions (store hits don't execute)."""
    calls = []
    real = RunSpec.execute

    def counting(self, check=False):
        calls.append(self)
        return real(self, check=check)

    monkeypatch.setattr(RunSpec, "execute", counting)
    return calls


class TestRunSpec:
    def test_arch_canonicalised(self):
        assert RunSpec("fft", "as-coma", 0.5) == RunSpec("fft", "ASCOMA", 0.5)
        assert (RunSpec("fft", "ccnuma_mig", 0.5).spec_hash()
                == RunSpec("fft", "CCNUMAMIG", 0.5).spec_hash())

    def test_override_order_does_not_change_hash(self):
        a = RunSpec.make("em3d", "ASCOMA", 0.7,
                         policy_overrides={"threshold": 8, "increment": 4})
        b = RunSpec.make("em3d", "ASCOMA", 0.7,
                         policy_overrides={"increment": 4, "threshold": 8})
        assert a == b and a.spec_hash() == b.spec_hash()

    def test_distinct_specs_distinct_hashes(self):
        seen = {RunSpec("fft", "ASCOMA", p, s).spec_hash()
                for p in (0.1, 0.5, 0.9) for s in (0.1, 0.5)}
        assert len(seen) == 6

    def test_distinct_quanta_distinct_store_keys(self, tmp_path):
        """The quantum changes event interleaving, so cached results
        must not be shared across quanta (the PR-1 cache-collision
        fix): distinct quanta hash -- and therefore store -- apart."""
        default = RunSpec.make("fft", "ASCOMA", 0.5, SCALE)
        q500 = RunSpec.make("fft", "ASCOMA", 0.5, SCALE, quantum=500)
        q900 = RunSpec.make("fft", "ASCOMA", 0.5, SCALE, quantum=900)
        assert len({s.spec_hash() for s in (default, q500, q900)}) == 3
        store = RunStore(tmp_path)
        store.put(q500, q500.execute())
        assert q500 in store
        assert default not in store  # a hit here would replay the wrong run
        assert q900 not in store

    def test_dict_roundtrip(self):
        spec = RunSpec.make("lu", "vcnuma", 0.9, 0.25,
                            policy_overrides={"threshold": 8},
                            config_overrides={"l1_ways": 2}, quantum=500)
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()
        json.dumps(spec.to_dict())  # JSON-compatible

    def test_cell_roundtrip(self):
        cell = ("fft", "SCOMA", 0.9, 0.2)
        assert RunSpec.from_cell(cell).cell() == cell

    def test_label_names_the_cell(self):
        assert "fft/ASCOMA@50%" in SPEC.label()

    def test_execute_applies_config_overrides(self):
        base = RunSpec("fft", "CCNUMA", 0.5, SCALE).execute()
        quiet = RunSpec.make("fft", "CCNUMA", 0.5, SCALE,
                             config_overrides={"model_contention": False})
        result = quiet.execute()
        # contention-free run is strictly faster than the contended one
        assert result.execution_time() < base.execution_time()


class TestRunStore:
    def test_empty_store_misses(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.get(SPEC) is None
        assert SPEC not in store
        assert store.misses == 1

    def test_put_get_preserves_everything(self, tmp_path):
        result = SPEC.execute()
        result.extra["marker"] = {"nested": 7}
        store = RunStore(tmp_path)
        store.put(SPEC, result)
        again = store.get(SPEC)
        assert SPEC in store
        assert again.architecture == result.architecture
        assert again.workload == result.workload
        assert again.pressure == result.pressure
        assert again.extra == result.extra
        # every NodeStats slot survives, node by node
        assert [s.as_dict() for s in again.node_stats] \
            == [s.as_dict() for s in result.node_stats]
        assert again.execution_time() == result.execution_time()

    def test_store_version_mismatch_is_a_miss(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path)
        store.put(SPEC, SPEC.execute())
        monkeypatch.setattr(store_mod, "STORE_VERSION", 999)
        assert store.get(SPEC) is None

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        store = RunStore(tmp_path)
        path = store.path_for(SPEC)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        assert store.get(SPEC) is None

    def test_foreign_spec_in_artifact_is_a_miss(self, tmp_path):
        store = RunStore(tmp_path)
        path = store.put(SPEC, SPEC.execute())
        payload = json.loads(path.read_text())
        payload["spec"]["pressure"] = 0.9  # simulated hash collision
        path.write_text(json.dumps(payload))
        assert store.get(SPEC) is None

    def test_entries_and_clear(self, tmp_path):
        store = RunStore(tmp_path)
        result = SPEC.execute()
        store.put(SPEC, result)
        store.put(RunSpec("fft", "CCNUMA", 0.5, SCALE), result)
        entries = store.entries()
        assert len(entries) == 2
        assert {e["spec"]["arch"] for e in entries} == {"ASCOMA", "CCNUMA"}
        assert store.clear() == 2
        assert store.entries() == []

    def test_use_store_restores_previous(self, tmp_path):
        outer = RunStore(tmp_path / "a")
        inner = RunStore(tmp_path / "b")
        with use_store(outer):
            with use_store(inner):
                assert get_default_store() is inner
            assert get_default_store() is outer
        assert get_default_store() is None


class TestCaching:
    def test_cache_round_trip_end_to_end(self, tmp_path, exec_counter):
        """Acceptance: 2nd run of the same spec performs zero simulations
        and returns an identical RunResult."""
        store = RunStore(tmp_path)
        first = execute_spec(SPEC, store=store)
        assert len(exec_counter) == 1
        second = execute_spec(SPEC, store=store)
        assert len(exec_counter) == 1  # store hit: no new simulation
        assert second.to_dict() == first.to_dict()
        assert [s.as_dict() for s in second.node_stats] \
            == [s.as_dict() for s in first.node_stats]

    def test_refresh_resimulates_and_restores(self, tmp_path, exec_counter):
        store = RunStore(tmp_path)
        execute_spec(SPEC, store=store)
        execute_spec(SPEC, store=store, refresh=True)
        assert len(exec_counter) == 2
        assert store.writes == 2
        execute_spec(SPEC, store=store)  # refreshed artifact still serves
        assert len(exec_counter) == 2

    def test_run_app_uses_ambient_store(self, tmp_path, exec_counter):
        store = RunStore(tmp_path)
        with use_store(store):
            first = run_app("fft", "ascoma", 0.5, scale=SCALE)
            second = run_app("fft", "AS-COMA", 0.5, scale=SCALE)
        assert len(exec_counter) == 1
        assert second.to_dict() == first.to_dict()

    def test_no_store_means_no_caching(self, exec_counter):
        run_app("fft", "ccnuma", 0.5, scale=SCALE)
        run_app("fft", "ccnuma", 0.5, scale=SCALE)
        assert len(exec_counter) == 2


class TestFaultIsolation:
    BAD = RunSpec("fft", "BOGUS", 0.5, SCALE)
    GOOD = [RunSpec("fft", "CCNUMA", 0.5, SCALE),
            RunSpec("fft", "SCOMA", 0.5, SCALE)]

    def test_failing_cell_does_not_kill_the_sweep(self, tmp_path):
        """Acceptance: one bad cell -> others complete, failure names it."""
        store = RunStore(tmp_path)
        out = execute([self.GOOD[0], self.BAD, self.GOOD[1]],
                      store=store, parallel=False)
        failure = out[self.BAD]
        assert isinstance(failure, RunFailure)
        assert failure.spec == self.BAD
        assert "BOGUS" in failure.error
        assert "Traceback" in failure.traceback
        for spec in self.GOOD:
            assert isinstance(out[spec], RunResult)

    def test_rerun_simulates_only_failed_and_missing(self, tmp_path,
                                                     exec_counter):
        """Acceptance: resume touches only cells without stored results."""
        store = RunStore(tmp_path)
        execute([self.GOOD[0], self.BAD, self.GOOD[1]],
                store=store, parallel=False)
        executed_first = list(exec_counter)
        assert len(executed_first) == 3
        out = execute([self.GOOD[0], self.BAD, self.GOOD[1]],
                      store=store, parallel=False)
        # only the (still-failing) bad cell was re-attempted
        assert exec_counter[len(executed_first):] == [self.BAD]
        assert isinstance(out[self.BAD], RunFailure)
        for spec in self.GOOD:
            assert isinstance(out[spec], RunResult)

    def test_pool_path_isolates_failures_too(self):
        out = execute([self.GOOD[0], self.BAD, self.GOOD[1]],
                      parallel=True, max_workers=2)
        assert isinstance(out[self.BAD], RunFailure)
        assert all(isinstance(out[s], RunResult) for s in self.GOOD)

    def test_retry_recovers_transient_failures(self, monkeypatch):
        attempts = []
        real = RunSpec.execute

        def flaky(spec, check=False):
            attempts.append(spec)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return real(spec, check=check)

        monkeypatch.setattr(RunSpec, "execute", flaky)
        assert isinstance(run_spec(self.GOOD[0], retries=0), RunFailure)
        attempts.clear()
        out = run_spec(self.GOOD[0], retries=1)
        assert isinstance(out, RunResult)
        assert len(attempts) == 2


class TestStoreFaultIsolation:
    SPEC2 = RunSpec("fft", "CCNUMA", 0.5, SCALE)

    class FailingPutStore(RunStore):
        def put(self, spec, result):
            raise OSError("disk full")

    def test_failing_put_keeps_the_result(self, tmp_path):
        """Satellite bugfix: a raising store.put after a successful
        simulate must not kill the sweep — the RunResult survives."""
        store = self.FailingPutStore(tmp_path)
        out = execute([SPEC, self.SPEC2], store=store, parallel=False)
        assert all(isinstance(r, RunResult) for r in out.values())
        assert len(out) == 2

    def test_failing_put_surfaces_store_fail_event(self, tmp_path):
        events = []
        out = execute([SPEC], store=self.FailingPutStore(tmp_path),
                      parallel=False,
                      progress=lambda e, s, d="": events.append((e, s, d)))
        assert isinstance(out[SPEC], RunResult)
        (event, spec, detail) = events[0]
        assert event == "store-fail" and spec == SPEC
        assert "OSError" in detail and "disk full" in detail
        # no "run" event for the cell: it completed but was not stored
        assert [e for e, _, _ in events] == ["store-fail"]

    def test_execute_spec_propagates_store_failure(self, tmp_path):
        """The single-cell path keeps its raise-to-caller contract."""
        with pytest.raises(OSError, match="disk full"):
            execute_spec(SPEC, store=self.FailingPutStore(tmp_path))


class TestProgress:
    GOOD = [RunSpec("fft", "CCNUMA", 0.5, SCALE),
            RunSpec("fft", "SCOMA", 0.5, SCALE)]
    BAD = RunSpec("fft", "BOGUS", 0.5, SCALE)

    @staticmethod
    def _collect(events):
        return lambda e, s, d="": events.append((e, s))

    def test_event_kinds_and_order_with_store(self, tmp_path):
        """Hits fire first (in spec order, during the store scan), then
        one run/fail per simulated cell in dispatch order."""
        store = RunStore(tmp_path)
        events: list = []
        execute([self.GOOD[0], self.BAD, self.GOOD[1]], store=store,
                parallel=False, progress=self._collect(events))
        assert events == [("run", self.GOOD[0]), ("fail", self.BAD),
                          ("run", self.GOOD[1])]
        events.clear()
        execute([self.GOOD[0], self.BAD, self.GOOD[1]], store=store,
                parallel=False, progress=self._collect(events))
        assert events == [("hit", self.GOOD[0]), ("hit", self.GOOD[1]),
                          ("fail", self.BAD)]

    def test_dedupe_reports_each_cell_once(self, tmp_path):
        events: list = []
        execute([self.GOOD[0], RunSpec("fft", "cc-numa", 0.5, SCALE)],
                store=RunStore(tmp_path), parallel=False,
                progress=self._collect(events))
        assert events == [("run", self.GOOD[0])]

    def test_refresh_reruns_cached_cells(self, tmp_path):
        store = RunStore(tmp_path)
        execute([self.GOOD[0]], store=store, parallel=False)
        events: list = []
        execute([self.GOOD[0]], store=store, parallel=False, refresh=True,
                progress=self._collect(events))
        assert events == [("run", self.GOOD[0])]

    def test_store_disabled_never_hits(self):
        events: list = []
        for _ in range(2):
            execute([self.GOOD[0]], store=None, parallel=False,
                    progress=self._collect(events))
        assert events == [("run", self.GOOD[0])] * 2

    def test_log_progress_formatting(self):
        import io
        stream = io.StringIO()
        log_progress("hit", SPEC, stream=stream)
        log_progress("run", SPEC, stream=stream)
        log_progress("fail", SPEC, "RuntimeError: boom", stream=stream)
        log_progress("store-fail", SPEC, "OSError: disk full", stream=stream)
        lines = stream.getvalue().splitlines()
        assert lines[0] == f"[cached] {SPEC.label()}"
        assert lines[1] == f"[   ran] {SPEC.label()}"
        assert lines[2] == f"[FAILED] {SPEC.label()} (RuntimeError: boom)"
        assert lines[3] == f"[!store] {SPEC.label()} (OSError: disk full)"


class TestPoolSizing:
    GOOD = [RunSpec("fft", "CCNUMA", 0.5, SCALE),
            RunSpec("fft", "SCOMA", 0.5, SCALE)]

    @pytest.fixture
    def fake_pool(self, monkeypatch):
        """Replace the executor's pool with an inline stand-in that
        records the worker count each construction asked for."""
        from repro.runtime import executor as executor_mod
        sizes: list = []

        class FakePool:
            def __init__(self, max_workers=None, initializer=None,
                         initargs=()):
                sizes.append(max_workers)
                if initializer:
                    initializer(*initargs)

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, payloads, chunksize=1):
                return [fn(p) for p in payloads]

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", FakePool)
        return sizes

    def test_workers_clamped_to_cell_count(self, fake_pool):
        """Satellite bugfix: ``--workers 8`` with 2 cells must fork 2
        workers, not 8 idle ones."""
        out = execute(self.GOOD, store=None, parallel=True, max_workers=8)
        assert fake_pool == [2]
        assert all(isinstance(r, RunResult) for r in out.values())

    def test_single_cell_runs_inline(self, fake_pool):
        out = execute([SPEC], store=None, parallel=True, max_workers=8)
        assert fake_pool == []  # no pool for a 1-cell dispatch
        assert isinstance(out[SPEC], RunResult)

    def test_one_worker_legacy_pool_runs_inline(self, fake_pool):
        """Satellite bugfix: the legacy path used to fork a pool even
        for a single worker; it now routes inline like the new path."""
        out = execute(self.GOOD, store=None, parallel=True, max_workers=1,
                      legacy_pool=True)
        assert fake_pool == []
        assert all(isinstance(r, RunResult) for r in out.values())

    def test_legacy_pool_with_multiple_workers_still_forks(self, fake_pool):
        out = execute(self.GOOD, store=None, parallel=True, max_workers=2,
                      legacy_pool=True)
        assert fake_pool == [2]
        assert all(isinstance(r, RunResult) for r in out.values())


class TestDedupe:
    def test_duplicate_cells_simulated_once(self, exec_counter):
        c1 = ("fft", "ascoma", 0.5, SCALE)
        c2 = ("fft", "AS-COMA", 0.5, SCALE)  # same cell, spelled differently
        out = run_cells([c1, c2, c1], parallel=False)
        assert len(exec_counter) == 1
        assert out[c1].to_dict() == out[c2].to_dict()

    def test_execute_fans_duplicates_back_out(self, exec_counter):
        out = execute([SPEC, RunSpec("fft", "as-coma", 0.5, SCALE)],
                      parallel=False)
        assert len(exec_counter) == 1
        assert len(out) == 1  # canonically the same spec
