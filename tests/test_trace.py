"""Unit tests for trace records, builders and persistence."""

import numpy as np
import pytest

from repro.sim.trace import (EV_BARRIER, EV_COMPUTE, EV_LOCAL, EV_READ,
                             EV_WRITE, Trace, TraceBuilder, WorkloadTraces)


class TestTraceBuilder:
    def test_basic_events(self):
        b = TraceBuilder()
        b.read(10)
        b.write(20)
        b.compute(100)
        b.local(50)
        b.barrier(0)
        t = b.build()
        assert list(t) == [(EV_READ, 10), (EV_WRITE, 20), (EV_COMPUTE, 100),
                           (EV_LOCAL, 50), (EV_BARRIER, 0)]

    def test_zero_compute_elided(self):
        b = TraceBuilder()
        b.compute(0)
        b.local(0)
        assert len(b) == 0

    def test_negative_cycles_rejected(self):
        b = TraceBuilder()
        with pytest.raises(ValueError):
            b.compute(-1)
        with pytest.raises(ValueError):
            b.local(-5)

    def test_extend_refs(self):
        b = TraceBuilder()
        b.extend_refs(np.array([1, 2, 3]), np.array([False, True, False]))
        t = b.build()
        assert t.count(EV_READ) == 2
        assert t.count(EV_WRITE) == 1

    def test_extend_refs_length_mismatch(self):
        with pytest.raises(ValueError):
            TraceBuilder().extend_refs(np.array([1]), np.array([True, False]))


class TestTrace:
    def make(self):
        b = TraceBuilder()
        b.read(0)
        b.read(128)    # page 1, line 0 (128 lines/page)
        b.write(200)
        b.barrier(0)
        b.compute(5)
        return b.build()

    def test_len(self):
        assert len(self.make()) == 5

    def test_shared_refs(self):
        assert self.make().shared_refs() == 3

    def test_barriers(self):
        assert self.make().barriers() == 1

    def test_pages_touched(self):
        assert self.make().pages_touched(128) == {0, 1}

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.zeros(3, dtype=np.uint8), np.zeros(2, dtype=np.int64))

    def test_event_name(self):
        assert self.make().event_name(EV_READ) == "READ"


class TestWorkloadTraces:
    def make(self, n_nodes=2):
        traces = []
        for node in range(n_nodes):
            b = TraceBuilder()
            b.read(node * 128)
            b.barrier(0)
            traces.append(b.build())
        return WorkloadTraces("t", traces, home_pages_per_node=1,
                             total_shared_pages=n_nodes)

    def test_basic_metadata(self):
        wl = self.make()
        assert wl.n_nodes == 2
        assert wl.total_refs() == 2

    def test_mismatched_barriers_rejected(self):
        b0 = TraceBuilder(); b0.barrier(0)
        b1 = TraceBuilder()
        with pytest.raises(ValueError):
            WorkloadTraces("bad", [b0.build(), b1.build()], 1, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WorkloadTraces("bad", [], 1, 2)

    def test_max_remote_pages_with_home_map(self):
        wl = self.make()
        home_of = {0: 0, 1: 1}
        assert wl.max_remote_pages(128, home_of) == 0
        cross = {0: 1, 1: 0}  # every touched page is remote
        assert wl.max_remote_pages(128, cross) == 1

    def test_ideal_pressure_formula(self):
        wl = self.make()
        # 0 remote pages under the proportional-share estimate.
        assert wl.ideal_pressure(128) == 1.0

    def test_save_load_roundtrip(self, tmp_path):
        wl = self.make()
        path = tmp_path / "wl.bin"
        wl.save(str(path))
        loaded = WorkloadTraces.load(str(path))
        assert loaded.name == wl.name
        assert loaded.n_nodes == wl.n_nodes
        assert loaded.total_refs() == wl.total_refs()
        for a, b in zip(loaded.traces, wl.traces):
            assert np.array_equal(a.kinds, b.kinds)
            assert np.array_equal(a.args, b.args)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"not a trace file")
        with pytest.raises(ValueError):
            WorkloadTraces.load(str(path))
