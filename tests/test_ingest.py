"""External-trace ingestion: parsing, identity, end-to-end replay.

The ingestion contract: a trace file plus parameters deterministically
maps to a ``WorkloadTraces`` whose content hash *is* its application
id (``ext/<name>@<hash>``), registered artifacts resolve through the
trace store exactly like generated workloads (run store, matrix
executor and vector kernel unchanged), and every malformed input fails
with a row-precise error instead of a corrupt workload.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.runtime import RunSpec, TraceStore, fetch_traces, trace_key, \
    use_trace_store
from repro.runtime.tracecache import clear_trace_memo
from repro.sim.trace import EV_BARRIER, EV_COMPUTE
from repro.workloads.ingest import (external_app_id, ingest_file,
                                    is_external_app, parse_external_app,
                                    register_external)
from repro.workloads.sample import SampleSpec

FIXTURES = Path(__file__).parent / "fixtures"
CSV_FIXTURE = FIXTURES / "external_small.csv"
CYDONIA_FIXTURE = FIXTURES / "cydonia_block.csv"


class TestParsing:
    def test_csv_fixture_shape(self):
        wl = ingest_file(CSV_FIXTURE)
        assert wl.name == "ext/external_small"
        assert wl.n_nodes == 4          # inferred from the node column
        assert wl.total_shared_pages >= 12
        refs = sum(t.shared_refs() for t in wl.traces)
        assert refs == 240              # one per fixture row

    def test_deterministic_identity(self):
        a = ingest_file(CSV_FIXTURE)
        b = ingest_file(CSV_FIXTURE)
        assert a.content_hash() == b.content_hash()
        assert external_app_id(a) == external_app_id(b)
        name, digest = parse_external_app(external_app_id(a))
        assert name == "ext/external_small"
        assert digest == a.content_hash()

    def test_parameters_change_identity(self):
        base = ingest_file(CSV_FIXTURE)
        assert (ingest_file(CSV_FIXTURE, barriers=3).content_hash()
                != base.content_hash())
        assert (ingest_file(CSV_FIXTURE, cycles_per_time=2.0).content_hash()
                != base.content_hash())

    def test_barrier_placement(self):
        wl = ingest_file(CSV_FIXTURE, barriers=3)
        for t in wl.traces:
            ids = t.args[t.kinds == EV_BARRIER]
            assert np.array_equal(ids, np.arange(3))

    def test_compute_gaps(self):
        plain = ingest_file(CSV_FIXTURE)
        timed = ingest_file(CSV_FIXTURE, cycles_per_time=2.0)
        assert not any(np.any(t.kinds == EV_COMPUTE) for t in plain.traces)
        assert any(np.any(t.kinds == EV_COMPUTE) for t in timed.traces)

    def test_cydonia_sharding(self):
        wl = ingest_file(CYDONIA_FIXTURE, fmt="cydonia", nodes=4)
        assert wl.n_nodes == 4
        assert all(t.shared_refs() > 0 for t in wl.traces)
        # sharding is seed-deterministic and seed-sensitive
        assert (wl.content_hash()
                == ingest_file(CYDONIA_FIXTURE, fmt="cydonia",
                               nodes=4).content_hash())
        assert (wl.content_hash()
                != ingest_file(CYDONIA_FIXTURE, fmt="cydonia", nodes=4,
                               seed=1).content_hash())

    def test_size_expands_to_lines(self, tmp_path):
        f = tmp_path / "sized.csv"
        f.write_text("time,node,addr,op,size\n"
                     "1,0,0,r,64\n"     # 2 lines
                     "2,1,4096,w\n")    # 1 line
        wl = ingest_file(f)
        assert sum(t.shared_refs() for t in wl.traces) == 3


class TestErrors:
    def test_unknown_format(self):
        with pytest.raises(ValueError, match="unknown ingest format"):
            ingest_file(CSV_FIXTURE, fmt="parquet")

    def test_bad_op(self, tmp_path):
        f = tmp_path / "bad.csv"
        f.write_text("1,0,0,x\n2,1,32,r\n")
        with pytest.raises(ValueError, match="unknown op"):
            ingest_file(f)

    def test_non_numeric_time_mid_file(self, tmp_path):
        f = tmp_path / "bad.csv"
        f.write_text("1,0,0,r\noops,1,32,r\n")
        with pytest.raises(ValueError, match="non-numeric time"):
            ingest_file(f)

    def test_empty_file(self, tmp_path):
        f = tmp_path / "empty.csv"
        f.write_text("time,node,addr,op\n")
        with pytest.raises(ValueError, match="no accesses"):
            ingest_file(f)

    def test_single_node_rejected(self, tmp_path):
        f = tmp_path / "solo.csv"
        f.write_text("1,0,0,r\n2,0,32,w\n")
        with pytest.raises(ValueError, match="only one node"):
            ingest_file(f)

    def test_node_out_of_range(self, tmp_path):
        f = tmp_path / "oob.csv"
        f.write_text("1,0,0,r\n2,5,32,r\n")
        with pytest.raises(ValueError, match="out of range"):
            ingest_file(f, nodes=2)

    def test_malformed_app_ids(self):
        for bad in ("ext/noname", "ext/x@123", "fft", "ext/a b@" + "0" * 16):
            with pytest.raises(ValueError, match="malformed"):
                parse_external_app(bad)

    def test_register_needs_store(self):
        wl = ingest_file(CSV_FIXTURE)
        with use_trace_store(None):
            with pytest.raises(ValueError, match="needs a TraceStore"):
                register_external(wl)


class TestEndToEnd:
    def test_register_then_run(self, tmp_path):
        """The acceptance path: ingest -> store -> cache-keyed replay."""
        store = TraceStore(tmp_path / "traces")
        wl = ingest_file(CSV_FIXTURE, barriers=2)
        with use_trace_store(store):
            app_id = register_external(wl, store=store)
            assert is_external_app(app_id)
            clear_trace_memo()
            fetched = fetch_traces(app_id, 1.0)
            assert fetched.content_hash() == wl.content_hash()
            result = RunSpec.make(app_id, "ASCOMA", 0.9, 1.0).execute()
        assert result.execution_time() > 0
        # identity is content-addressed: distinct ingest params cannot
        # alias (different hash -> different id -> different key)
        other_id = external_app_id(ingest_file(CSV_FIXTURE, barriers=3))
        assert trace_key(app_id, 1.0) != trace_key(other_id, 1.0)

    def test_unregistered_external_app_fails_clearly(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        with use_trace_store(store):
            with pytest.raises(LookupError, match="repro ingest"):
                fetch_traces("ext/ghost@" + "0" * 16, 1.0)

    def test_wrong_hash_is_a_miss(self, tmp_path):
        """An id whose hash doesn't match the stored artifact must not
        resolve — content identity is the whole point of the @hash."""
        store = TraceStore(tmp_path / "traces")
        wl = ingest_file(CSV_FIXTURE)
        with use_trace_store(store):
            register_external(wl, store=store)
            clear_trace_memo()
            bogus = wl.name + "@" + "f" * 16
            with pytest.raises(LookupError):
                fetch_traces(bogus, 1.0)

    def test_sampled_external_replay(self, tmp_path):
        """Sampling composes with ingestion: barrier-poor external
        traces sample at visit granularity, keyed separately."""
        store = TraceStore(tmp_path / "traces")
        wl = ingest_file(CSV_FIXTURE)
        spec = SampleSpec(rate=2, unit="visit")
        with use_trace_store(store):
            app_id = register_external(wl, store=store)
            clear_trace_memo()
            sampled = fetch_traces(app_id, 1.0, sample=spec)
            assert (sum(t.shared_refs() for t in sampled.traces)
                    < sum(t.shared_refs() for t in wl.traces))
            assert sampled.params["full_content_hash"] == wl.content_hash()
            result = RunSpec.make(app_id, "SCOMA", 0.9, 1.0,
                                  sample=spec).execute()
        assert result.execution_time() > 0
