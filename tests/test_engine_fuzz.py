"""Property-based fuzzing of the replay engine.

Hypothesis generates small random workloads (random pages, read/write
mixes, compute bursts, barrier placements) and replays them through
every architecture, asserting the accounting invariants that must hold
for *any* input:

* time buckets sum to the total; clocks never go backwards;
* every L1 miss is classified into exactly one miss class;
* miss classes are architecture-consistent (CC-NUMA never hits a page
  cache, pure S-COMA never sends a conflict miss remote);
* frame accounting balances (allocations - releases == frames in use);
* the coherence reachability audit holds at end of run;
* the online invariant checker (``repro.check``), attached at event
  granularity, stays silent for every architecture.

``REPRO_FUZZ_EXAMPLES`` scales the per-test example count (default 25)
so CI's dispatch-gated fuzz job can run a deeper sweep than the tier-1
suite without editing the file.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.check import InvariantChecker
from repro.core import make_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.trace import TraceBuilder, WorkloadTraces
from tests.test_coherence_model import audit_machine

MAX_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))

N_NODES = 3
HOME_PAGES = 2
TOTAL_PAGES = N_NODES * HOME_PAGES
LPP = 128

# One event: (kind, a, b) -- kind 0 read, 1 write, 2 compute, 3 barrier-ish
event = st.tuples(st.integers(0, 2),
                  st.integers(0, TOTAL_PAGES - 1),
                  st.integers(0, LPP - 1))
node_events = st.lists(event, max_size=60)
workload_events = st.tuples(*[node_events] * N_NODES)

ARCH_KWARGS = {
    "CCNUMA": {},
    "SCOMA": {},
    "RNUMA": dict(threshold=4),
    "VCNUMA": dict(threshold=4, break_even=2, increment=2),
    "ASCOMA": dict(threshold=4, increment=2),
    "CCNUMAMIG": dict(threshold=4),
}


def build_workload(per_node) -> WorkloadTraces:
    builders = []
    for node, events in enumerate(per_node):
        b = TraceBuilder()
        for page in range(node * HOME_PAGES, (node + 1) * HOME_PAGES):
            b.read(page * LPP)
        b.barrier(0)
        for kind, page, line in events:
            if kind == 0:
                b.read(page * LPP + line)
            elif kind == 1:
                b.write(page * LPP + line)
            else:
                b.compute(1 + line)
        b.barrier(1)
        builders.append(b)
    return WorkloadTraces("fuzz", [b.build() for b in builders],
                          home_pages_per_node=HOME_PAGES,
                          total_shared_pages=TOTAL_PAGES)


@pytest.mark.parametrize("arch", sorted(ARCH_KWARGS))
class TestEngineFuzz:
    @given(workload_events, st.sampled_from([0.3, 0.9]),
           st.booleans())
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_invariants(self, arch, per_node, pressure, vector):
        """Every accounting invariant, with the checker online.

        Runs under both loop selections: attaching the checker
        subscribes an unfiltered observer, so a ``vector_path=True``
        engine degrades to the scalar fast path -- this leg proves a
        checked run under ``REPRO_VECTOR_PATH=1`` stays loss-free and
        violation-silent, the same contract the fast path's own
        degradations honour.  (True vectorized runs are audited in
        ``test_vector_path_invariance`` below.)
        """
        wl = build_workload(per_node)
        cfg = SystemConfig(n_nodes=N_NODES, memory_pressure=pressure)
        engine = Engine(wl, make_policy(arch, **ARCH_KWARGS[arch]), cfg,
                        vector_path=vector)
        checker = InvariantChecker.attach(engine, granularity="event")
        result = engine.run()

        # The online checker saw every transition and stayed silent.
        assert not checker.violations, checker.report()
        assert result.invariant_violations == 0

        for node, stats in zip(engine.machine.nodes, result.node_stats):
            # Accounting closure.
            assert stats.total_cycles() == sum(stats.time_breakdown().values())
            assert stats.total_cycles() >= 0
            # Every L1 miss classified exactly once.
            assert stats.shared_misses() == stats.l1_misses
            # Hits + misses == shared references of the trace.
            # (computed below at workload level)
            # Frame accounting balances.
            pool = node.pool
            assert 0 <= pool.free <= pool.capacity
            assert pool.in_use == node.page_table.scoma_page_count()
            # Latency accumulators never negative and only nonzero with
            # their count.
            for cls in ("HOME", "SCOMA", "RAC", "COLD", "CONF_CAPC"):
                lat = getattr(stats, cls + "_LAT")
                assert lat >= 0
                if getattr(stats, cls) == 0:
                    assert lat == 0

        agg = result.aggregate()
        total_refs = wl.total_refs()
        assert agg.l1_hits + agg.l1_misses == total_refs

        # Architecture-specific classification constraints.
        if arch == "CCNUMA":
            assert agg.SCOMA == 0 and agg.relocations == 0
            assert agg.K_OVERHD == 0
        if arch == "SCOMA":
            assert agg.RAC == 0
            assert agg.CONF_CAPC == 0
        if arch == "CCNUMAMIG":
            assert agg.relocations == 0  # migrates, never remaps

        audit_machine(engine)

    @given(workload_events)
    @settings(max_examples=max(5, MAX_EXAMPLES // 2), deadline=None)
    def test_determinism(self, arch, per_node):
        wl = build_workload(per_node)
        cfg = SystemConfig(n_nodes=N_NODES, memory_pressure=0.5)
        a = Engine(wl, make_policy(arch, **ARCH_KWARGS[arch]), cfg).run()
        b = Engine(wl, make_policy(arch, **ARCH_KWARGS[arch]), cfg).run()
        assert a.aggregate().as_dict() == b.aggregate().as_dict()

    @given(workload_events, st.sampled_from([0.3, 0.9]),
           st.sampled_from([60, 500, 2000]))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_three_path_invariance(self, arch, per_node, pressure, quantum):
        """Path invariance: identical cycles/stats/events on all three
        replay loops for random workloads.

        The quantum samples cover trace-spanning slices (2000 swallows
        these tiny traces whole, no mid-trace rescheduling) and tight
        interleavings (60 forces many slices per trace, exercising the
        scheduler handoff and the vector kernel's resume protocol); the
        random read/write bursts hit the PR3 coalescing cases in the
        scalar loops, which the SoA decode must reproduce event for
        event.
        """
        wl = build_workload(per_node)

        def run(**kwargs):
            cfg = SystemConfig(n_nodes=N_NODES, memory_pressure=pressure)
            policy = make_policy(arch, **ARCH_KWARGS[arch])
            return Engine(wl, policy, cfg, quantum=quantum,
                          **kwargs).run().to_dict()

        reference = run(slow_path=True)
        assert run() == reference
        assert run(vector_path=True) == reference

    @given(workload_events, st.sampled_from([0.3, 0.9]))
    @settings(max_examples=max(5, MAX_EXAMPLES // 2), deadline=None)
    def test_vector_run_passes_structural_audit(self, arch, per_node,
                                                pressure):
        """A genuinely vectorized run (no checker attached, so no
        fallback) must leave machine state that passes the structural
        coherence audit -- which traverses the array-backed dict/set
        views the vector substrate installs, validating the views'
        iteration/containment semantics against the real model."""
        wl = build_workload(per_node)
        cfg = SystemConfig(n_nodes=N_NODES, memory_pressure=pressure)
        engine = Engine(wl, make_policy(arch, **ARCH_KWARGS[arch]), cfg,
                        vector_path=True)
        engine.run()
        audit_machine(engine)
