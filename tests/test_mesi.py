"""Tests for the MESI Exclusive-state protocol option."""

import pytest

from repro.coherence.directory import Directory
from repro.harness.experiment import get_workload, scaled_policy
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine, simulate
from tests.test_coherence_model import audit_machine


class TestDirectoryExclusive:
    def test_sole_reader_granted_exclusive(self):
        d = Directory(4, 32, grant_exclusive=True)
        out = d.fetch(1, 0, 0, False, 0)
        assert out.exclusive
        assert d.owner[0] == 1
        assert d.exclusive_grants == 1

    def test_second_reader_not_exclusive(self):
        d = Directory(4, 32, grant_exclusive=True)
        d.fetch(1, 0, 0, False, 0)
        out = d.fetch(2, 0, 0, False, 0)
        assert not out.exclusive
        assert out.forwarded  # E owner supplies the data
        assert 0 not in d.owner  # demoted to shared

    def test_msi_never_grants_exclusive(self):
        d = Directory(4, 32, grant_exclusive=False)
        out = d.fetch(1, 0, 0, False, 0)
        assert not out.exclusive
        assert 0 not in d.owner

    def test_exclusive_then_remote_write_invalidates(self):
        d = Directory(4, 32, grant_exclusive=True)
        d.fetch(1, 0, 0, False, 0)
        out = d.fetch(2, 0, 0, True, 0)
        assert out.invalidations == (1,)
        assert d.owner[0] == 2

    def test_swmr_preserved_under_mesi(self):
        d = Directory(4, 32, grant_exclusive=True)
        d.fetch(1, 0, 0, False, 0)     # E at 1
        d.fetch(2, 0, 0, False, 0)     # S at 1,2
        assert sorted(d.sharers(0)) == [1, 2]
        d.fetch(3, 0, 0, True, 0)      # M at 3
        assert d.sharers(0) == [3]


class TestConfig:
    def test_protocol_validated(self):
        with pytest.raises(ValueError):
            SystemConfig(protocol="moesi")

    def test_default_is_msi(self):
        assert SystemConfig().protocol == "msi"


class TestEndToEnd:
    def test_mesi_eliminates_private_upgrades(self):
        wl = get_workload("ocean", 0.25)
        results = {}
        for proto in ("msi", "mesi"):
            cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5,
                               protocol=proto)
            results[proto] = simulate(wl, scaled_policy("CCNUMA"),
                                      cfg).aggregate()
        assert results["mesi"].upgrades < results["msi"].upgrades / 2
        assert results["mesi"].total_cycles() <= results["msi"].total_cycles()

    def test_mesi_does_not_change_miss_classification(self):
        wl = get_workload("fft", 0.25)
        totals = {}
        for proto in ("msi", "mesi"):
            cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.5,
                               protocol=proto)
            agg = simulate(wl, scaled_policy("ASCOMA"), cfg).aggregate()
            totals[proto] = agg.shared_misses()
        assert totals["mesi"] == pytest.approx(totals["msi"], rel=0.05)

    @pytest.mark.parametrize("arch", ["CCNUMA", "ASCOMA", "SCOMA"])
    def test_coherence_audit_holds_under_mesi(self, arch):
        from repro.workloads import synthetic
        wl = synthetic.generate(n_nodes=4, home_pages_per_node=6,
                                remote_pages_per_node=8, sweeps=4,
                                write_fraction=0.3, home_lines_per_sweep=32,
                                seed=9)
        cfg = SystemConfig(n_nodes=4, memory_pressure=0.5, protocol="mesi")
        from repro.core import make_policy
        kwargs = {"ASCOMA": dict(threshold=8, increment=4)}.get(arch, {})
        engine = Engine(wl, make_policy(arch, **kwargs), cfg)
        engine.run()
        audit_machine(engine)
