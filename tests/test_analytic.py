"""Unit tests for the Table 1 analytic cost model."""

import pytest

from repro.core.analytic import (MissCounts, RemoteOverheadModel, TABLE1_ROWS,
                                 TABLE2_ROWS)


@pytest.fixture
def model():
    return RemoteOverheadModel(t_pagecache=50, t_remote=180)


class TestFormulas:
    def test_ccnuma_only_remote_term(self, model):
        m = MissCounts(n_pagecache=100, n_remote=10, n_cold=5, t_overhead=999)
        assert model.ccnuma(m) == 10 * 180

    def test_scoma_has_no_remote_conflict_term(self, model):
        m = MissCounts(n_pagecache=100, n_remote=10, n_cold=5, t_overhead=40)
        assert model.scoma(m) == 100 * 50 + 5 * 180 + 40

    def test_hybrid_has_all_terms(self, model):
        m = MissCounts(n_pagecache=100, n_remote=10, n_cold=5, t_overhead=40)
        assert model.hybrid(m) == 100 * 50 + 10 * 180 + 5 * 180 + 40

    def test_zero_counts_zero_overhead(self, model):
        m = MissCounts()
        assert model.ccnuma(m) == model.scoma(m) == model.hybrid(m) == 0

    @pytest.mark.parametrize("arch,expect", [
        ("CCNUMA", 1800), ("SCOMA", 5940), ("RNUMA", 7740),
        ("VCNUMA", 7740), ("ASCOMA", 7740), ("hybrid", 7740),
    ])
    def test_evaluate_dispatch(self, model, arch, expect):
        m = MissCounts(n_pagecache=100, n_remote=10, n_cold=5, t_overhead=40)
        assert model.evaluate(arch, m) == expect

    def test_evaluate_unknown_arch(self, model):
        with pytest.raises(ValueError):
            model.evaluate("sgi-origin", MissCounts())


class TestPaperRelations:
    """The relations (1)-(5) of Section 2.4, expressed over the model."""

    def test_low_pressure_scoma_beats_hybrid(self, model):
        """Relations (1)-(3): with free pages everywhere, the hybrid pays
        remote refetches + overhead that S-COMA does not."""
        scoma = MissCounts(n_pagecache=120, n_cold=20)
        hybrid = MissCounts(n_pagecache=100, n_remote=15, n_cold=25,
                            t_overhead=5000)
        assert model.scoma(scoma) < model.hybrid(hybrid)

    def test_high_pressure_hybrid_can_lose_to_ccnuma(self, model):
        """Relations (4)-(5): thrashing overhead swamps the savings."""
        ccnuma = MissCounts(n_remote=100)
        hybrid = MissCounts(n_pagecache=30, n_remote=80, n_cold=30,
                            t_overhead=20_000)
        assert model.hybrid(hybrid) > model.ccnuma(ccnuma)


class TestValidation:
    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            MissCounts(n_remote=-1)

    def test_bad_latencies_rejected(self):
        with pytest.raises(ValueError):
            RemoteOverheadModel(t_pagecache=0)
        with pytest.raises(ValueError):
            RemoteOverheadModel(t_pagecache=200, t_remote=100)


class TestStaticTables:
    def test_table1_has_three_models(self):
        assert [r["model"] for r in TABLE1_ROWS] == \
            ["CC-NUMA", "S-COMA", "Hybrid Architectures"]

    def test_table1_factors(self):
        assert TABLE1_ROWS[0]["performance_factors"] == ["Network speed"]
        assert "Software overhead" in TABLE1_ROWS[1]["performance_factors"]

    def test_table2_ccnuma_costs_nothing(self):
        assert TABLE2_ROWS[0]["storage_cost"] == "None"

    def test_table2_hybrid_mentions_refetch_count(self):
        assert "Refetch" in TABLE2_ROWS[2]["storage_cost"]
