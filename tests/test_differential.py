"""Differential testing: replay engine vs the analytic overhead model.

Table 1's formula predicts each architecture's remote access overhead
from its miss counts::

    (Npagecache * Tpagecache) + (Nremote * Tremote)
        + (Ncold * Tremote) + Toverhead

With contention modelling off, the simulator's per-class stall
accounting must track that prediction from its *own* miss counters --
a divergence means the engine is charging cycles the classification
doesn't explain (or vice versa).

Recorded tolerance: ``1.0 <= simulated/predicted <= 1.05``.

* The lower bound is exact: the analytic T-terms are the engine's
  contention-free minima, so simulation can only add cycles.
* The upper band covers the two stall sources the formula omits:
  sequential-consistency write stalls (invalidation round-trips on
  upgrades) and network paths longer than one switch hop.  Empirically
  (em3d / fft / radix x all architectures x pressures 0.3-0.9, scale
  0.25) the worst observed ratio is 1.030.

CC-NUMA's formula has no cold term "by construction" (its Nremote is
every remote miss), so cold misses fold into ``n_remote`` there.
"""

import pytest

from repro.core import make_policy
from repro.core.analytic import MissCounts, RemoteOverheadModel
from repro.harness.experiment import SCALED_POLICY_KWARGS, get_workload
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine

RATIO_MAX = 1.05

APPS = ("em3d", "fft", "radix")
ARCHS = ("CCNUMA", "SCOMA", "RNUMA", "VCNUMA", "ASCOMA")
PRESSURES = (0.3, 0.7, 0.9)


def simulate(app, arch, pressure):
    wl = get_workload(app, 0.25)
    cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=pressure,
                       model_contention=False)
    engine = Engine(wl, make_policy(arch, **SCALED_POLICY_KWARGS[arch]), cfg)
    return engine.run().aggregate()


def miss_counts(arch, agg) -> MissCounts:
    if arch == "CCNUMA":
        return MissCounts(n_remote=agg.CONF_CAPC + agg.COLD)
    return MissCounts(n_pagecache=agg.SCOMA, n_remote=agg.CONF_CAPC,
                      n_cold=agg.COLD, t_overhead=agg.K_OVERHD)


@pytest.mark.parametrize("arch", ARCHS)
@pytest.mark.parametrize("app", APPS)
class TestEngineTracksAnalyticModel:
    @pytest.mark.parametrize("pressure", PRESSURES)
    def test_overhead_within_recorded_tolerance(self, app, arch, pressure):
        agg = simulate(app, arch, pressure)
        cfg = SystemConfig(n_nodes=1)
        model = RemoteOverheadModel(t_pagecache=cfg.local_memory_cycles,
                                    t_remote=cfg.remote_min_cycles())
        predicted = model.evaluate(arch, miss_counts(arch, agg))
        simulated = (agg.SCOMA_LAT + agg.CONF_CAPC_LAT + agg.COLD_LAT
                     + agg.K_OVERHD)
        assert predicted > 0, "differential comparison needs remote traffic"
        ratio = simulated / predicted
        assert 1.0 <= ratio <= RATIO_MAX, (
            f"{app}/{arch}@{pressure:.0%}: simulated {simulated:,} vs"
            f" predicted {predicted:,} (ratio {ratio:.4f})")


class TestModelStructure:
    """The formula's architecture-specific structure holds in the engine."""

    def test_ccnuma_never_uses_the_page_cache(self):
        agg = simulate("em3d", "CCNUMA", 0.7)
        assert agg.SCOMA == 0 and agg.SCOMA_LAT == 0
        assert agg.K_OVERHD == 0  # Toverhead == 0 by construction

    def test_scoma_sends_no_conflict_miss_remote(self):
        agg = simulate("em3d", "SCOMA", 0.7)
        assert agg.CONF_CAPC == 0 and agg.CONF_CAPC_LAT == 0

    def test_hybrids_use_all_four_terms_under_pressure(self):
        agg = simulate("em3d", "ASCOMA", 0.9)
        assert agg.SCOMA > 0       # page-cache hits
        assert agg.CONF_CAPC > 0   # remote conflict misses
        assert agg.COLD > 0        # (induced) cold misses
        assert agg.K_OVERHD > 0    # software overhead
