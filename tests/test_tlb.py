"""Unit tests for the TLB / reference-bit model."""

import pytest

from repro.mem.tlb import TLB


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(4)
        assert not tlb.access(1)
        assert tlb.access(1)
        assert tlb.hits == 1 and tlb.misses == 1

    def test_fifo_eviction(self):
        tlb = TLB(2)
        tlb.access(1)
        tlb.access(2)
        tlb.access(3)  # evicts 1
        assert not tlb.resident(1)
        assert tlb.resident(2) and tlb.resident(3)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TLB(0)

    def test_shootdown(self):
        tlb = TLB(4)
        tlb.access(5)
        tlb.shootdown(5)
        assert not tlb.resident(5)
        assert tlb.shootdowns == 1

    def test_shootdown_clears_reference_bit(self):
        tlb = TLB(4)
        tlb.access(5)
        tlb.shootdown(5)
        assert not tlb.reference_bit(5)


class TestReferenceBits:
    def test_access_sets_bit(self):
        tlb = TLB(4)
        tlb.access(7)
        assert tlb.reference_bit(7)

    def test_clear_bit(self):
        tlb = TLB(4)
        tlb.access(7)
        tlb.clear_reference_bit(7)
        assert not tlb.reference_bit(7)

    def test_bit_survives_tlb_eviction(self):
        """The paper's second chance consults pmap bits, not TLB residency."""
        tlb = TLB(1)
        tlb.access(1)
        tlb.access(2)  # evicts 1 from the TLB
        assert tlb.reference_bit(1)

    def test_re_access_after_clear_resets_bit(self):
        tlb = TLB(4)
        tlb.access(3)
        tlb.clear_reference_bit(3)
        tlb.access(3)
        assert tlb.reference_bit(3)

    def test_unknown_page_bit_is_false(self):
        assert not TLB(4).reference_bit(99)
