"""Tests for parallel matrix execution and config/result serialization."""

import math


from repro.harness.experiment import run_app
from repro.harness.parallel import run_cell, run_cells, run_matrix_parallel
from repro.harness.serialize import (config_from_dict, config_to_dict,
                                     load_results, result_from_dict,
                                     result_to_dict, save_results)
from repro.kernel.costs import KernelCosts
from repro.sim.config import SystemConfig

SCALE = 0.2


class TestSerializeConfig:
    def test_roundtrip_default(self):
        cfg = SystemConfig()
        again = config_from_dict(config_to_dict(cfg))
        assert again == cfg

    def test_roundtrip_custom(self):
        cfg = SystemConfig(n_nodes=4, memory_pressure=0.9, l1_ways=2,
                           kernel=KernelCosts(page_remap=1234))
        again = config_from_dict(config_to_dict(cfg))
        assert again == cfg
        assert again.kernel.page_remap == 1234

    def test_dict_is_json_compatible(self):
        import json
        json.dumps(config_to_dict(SystemConfig()))


class TestSerializeResults:
    def test_result_roundtrip(self):
        result = run_app("fft", "ASCOMA", 0.5, scale=SCALE)
        again = result_from_dict(result_to_dict(result))
        assert again.architecture == result.architecture
        assert again.aggregate().as_dict() == result.aggregate().as_dict()
        assert again.execution_time() == result.execution_time()

    def test_save_load_file(self, tmp_path):
        results = {("ASCOMA", 0.5): run_app("fft", "ASCOMA", 0.5, SCALE)}
        path = tmp_path / "run.json"
        save_results(str(path), results, config=SystemConfig(n_nodes=8))
        config, loaded = load_results(str(path))
        assert config.n_nodes == 8
        assert ("ASCOMA", 0.5) in loaded
        assert loaded[("ASCOMA", 0.5)].aggregate().total_cycles() == \
            results[("ASCOMA", 0.5)].aggregate().total_cycles()

    def test_save_without_config(self, tmp_path):
        path = tmp_path / "run.json"
        save_results(str(path), {})
        config, loaded = load_results(str(path))
        assert config is None and loaded == {}


class TestParallel:
    def test_run_cell_matches_run_app(self):
        a = run_cell(("fft", "CCNUMA", 0.5, SCALE))
        b = run_app("fft", "CCNUMA", 0.5, scale=SCALE)
        assert a.aggregate().as_dict() == b.aggregate().as_dict()

    def test_inline_path(self):
        cells = [("fft", "CCNUMA", 0.5, SCALE), ("fft", "ASCOMA", 0.5, SCALE)]
        results = run_cells(cells, parallel=False)
        assert set(results) == set(cells)

    def test_parallel_matches_inline(self):
        cells = [("fft", "CCNUMA", 0.5, SCALE), ("fft", "ASCOMA", 0.5, SCALE),
                 ("fft", "SCOMA", 0.9, SCALE)]
        inline = run_cells(cells, parallel=False)
        fanned = run_cells(cells, parallel=True, max_workers=2)
        for cell in cells:
            assert (inline[cell].aggregate().as_dict()
                    == fanned[cell].aggregate().as_dict())

    def test_matrix_parallel_shape(self):
        out = run_matrix_parallel(apps=("fft",), scale=SCALE, max_workers=2)
        assert ("CCNUMA", None) in out["fft"]
        assert any(key[0] == "ASCOMA" for key in out["fft"])

    def test_matrix_results_are_finite(self):
        out = run_matrix_parallel(apps=("fft",), scale=SCALE, max_workers=2)
        for result in out["fft"].values():
            total = result.aggregate().total_cycles()
            assert total > 0 and math.isfinite(total)

    def test_matrix_parallel_plumbs_quantum(self, monkeypatch):
        """--quantum must reach every spec of the parallel matrix path."""
        import repro.harness.parallel as par
        captured = []

        def fake_execute(specs, **kwargs):
            captured.extend(specs)
            return {spec: object() for spec in captured}

        monkeypatch.setattr(par, "execute", fake_execute)
        run_matrix_parallel(apps=("fft",), scale=SCALE, quantum=512)
        assert captured and all(spec.quantum == 512 for spec in captured)
