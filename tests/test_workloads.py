"""Tests for the six application trace generators."""

import numpy as np
import pytest

from repro.mem.address import AddressMap
from repro.sim.trace import EV_BARRIER, EV_READ, EV_WRITE
from repro.workloads import (WORKLOADS, barnes, em3d, fft, generate_workload,
                             lu, ocean, radix, synthetic)
from repro.workloads.base import WorkloadSpec, emit_visits
from repro.sim.trace import TraceBuilder

LPP = AddressMap().lines_per_page
SCALE = 0.25  # small traces: these tests exercise structure, not volume


@pytest.fixture(scope="module", params=sorted(WORKLOADS))
def app_workload(request):
    return request.param, generate_workload(request.param, scale=SCALE)


class TestAllApps:
    def test_node_counts_match_paper(self, app_workload):
        name, wl = app_workload
        assert wl.n_nodes == (4 if name == "lu" else 8)

    def test_barriers_equal_across_nodes(self, app_workload):
        _, wl = app_workload
        counts = {t.barriers() for t in wl.traces}
        assert len(counts) == 1

    def test_prologue_touches_own_home_pages_first(self, app_workload):
        """The first shared reference of every node must hit its own home
        range, pinning the balanced first-touch assignment."""
        _, wl = app_workload
        h = wl.home_pages_per_node
        for node, trace in enumerate(wl.traces):
            for kind, arg in trace:
                if kind in (EV_READ, EV_WRITE):
                    assert node * h <= arg // LPP < (node + 1) * h
                    break

    def test_every_home_page_touched_in_prologue(self, app_workload):
        _, wl = app_workload
        h = wl.home_pages_per_node
        for node, trace in enumerate(wl.traces):
            seen = set()
            for kind, arg in trace:
                if kind == EV_BARRIER:
                    break
                if kind in (EV_READ, EV_WRITE):
                    seen.add(arg // LPP)
            assert seen == set(range(node * h, (node + 1) * h))

    def test_pages_within_address_space(self, app_workload):
        _, wl = app_workload
        for trace in wl.traces:
            pages = trace.pages_touched(LPP)
            assert max(pages) < wl.total_shared_pages
            assert min(pages) >= 0

    def test_remote_traffic_exists(self, app_workload):
        _, wl = app_workload
        h = wl.home_pages_per_node
        for node, trace in enumerate(wl.traces):
            remote = {p for p in trace.pages_touched(LPP)
                      if not node * h <= p < (node + 1) * h}
            assert remote, f"node {node} never touches remote data"

    def test_deterministic_generation(self, app_workload):
        name, wl = app_workload
        again = generate_workload(name, scale=SCALE)
        for a, b in zip(wl.traces, again.traces):
            assert np.array_equal(a.kinds, b.kinds)
            assert np.array_equal(a.args, b.args)

    def test_params_record_spec(self, app_workload):
        _, wl = app_workload
        assert "spec" in wl.params
        assert 0 < wl.params["spec"]["ideal_pressure"] < 1


class TestIdealPressures:
    """Table 5's ordering: radix lowest, fft/ocean highest."""

    def test_ordering(self):
        pressures = {name: WORKLOADS[name][0](n_nodes=WORKLOADS[name][1],
                                              scale=SCALE).params["spec"]
                     ["ideal_pressure"] for name in WORKLOADS}
        assert pressures["radix"] < pressures["barnes"]
        assert pressures["barnes"] < pressures["em3d"]
        assert pressures["fft"] > 0.6
        assert pressures["ocean"] > 0.6


class TestAppCharacter:
    def test_radix_touches_every_remote_page(self):
        wl = radix.generate(scale=SCALE)
        h = wl.home_pages_per_node
        for node, trace in enumerate(wl.traces):
            remote = {p for p in trace.pages_touched(LPP)
                      if not node * h <= p < (node + 1) * h}
            assert len(remote) == wl.total_shared_pages - h

    def test_radix_single_line_visits(self):
        spec = radix.default_spec(scale=SCALE)
        assert spec.lines_per_visit == 1

    def test_em3d_remote_pages_come_from_neighbours(self):
        wl = em3d.generate(scale=SCALE)
        h = wl.home_pages_per_node
        n = wl.n_nodes
        for node, trace in enumerate(wl.traces):
            owners = {p // h for p in trace.pages_touched(LPP)}
            allowed = {node, (node - 1) % n, (node + 1) % n}
            assert owners <= allowed

    def test_ocean_remote_set_is_boundary_rows(self):
        wl = ocean.generate(scale=SCALE)
        h = wl.home_pages_per_node
        n = wl.n_nodes
        for node, trace in enumerate(wl.traces):
            owners = {p // h for p in trace.pages_touched(LPP)}
            assert owners <= {node, (node - 1) % n, (node + 1) % n}

    def test_fft_remote_set_is_all_to_all(self):
        wl = fft.generate(scale=1.0)
        h = wl.home_pages_per_node
        for node, trace in enumerate(wl.traces):
            owners = {p // h for p in trace.pages_touched(LPP)} - {node}
            assert len(owners) == wl.n_nodes - 1

    def test_barnes_is_compute_heavy(self):
        assert barnes.default_spec().compute_per_ref > \
            radix.default_spec().compute_per_ref

    def test_lu_phases_shift_active_set(self):
        gen = lu.LUGenerator(lu.default_spec(scale=SCALE))
        rng = np.random.default_rng(0)
        hot = np.arange(100, 160)
        early = set(gen.sweep_visit_pages(0, 0, hot, np.array([], dtype=int),
                                          rng).tolist())
        late = set(gen.sweep_visit_pages(0, gen.spec.sweeps - 1, hot,
                                         np.array([], dtype=int), rng).tolist())
        assert early.isdisjoint(late)

    def test_scale_changes_size(self):
        small = barnes.generate(scale=0.25)
        big = barnes.generate(scale=0.5)
        assert big.total_refs() > small.total_refs()
        assert big.home_pages_per_node > small.home_pages_per_node


class TestEmitVisits:
    def args(self):
        return dict(lines_per_visit=4, lines_per_page=LPP,
                    write_fraction=0.0, compute_per_visit=10)

    def test_ref_count(self):
        b = TraceBuilder()
        rng = np.random.default_rng(0)
        n = emit_visits(b, rng, np.array([1, 2, 3]), **self.args())
        assert n == 12
        assert b.build().shared_refs() == 12

    def test_empty_pages(self):
        b = TraceBuilder()
        assert emit_visits(b, np.random.default_rng(0),
                           np.array([], dtype=int), **self.args()) == 0

    def test_lines_stay_in_their_page(self):
        b = TraceBuilder()
        rng = np.random.default_rng(0)
        emit_visits(b, rng, np.array([5] * 20), **self.args())
        t = b.build()
        assert t.pages_touched(LPP) == {5}

    def test_line_repeats_double_refs(self):
        b = TraceBuilder()
        rng = np.random.default_rng(0)
        n = emit_visits(b, rng, np.array([1, 2]), line_repeats=2, **self.args())
        assert n == 16

    def test_repeats_are_adjacent(self):
        b = TraceBuilder()
        rng = np.random.default_rng(0)
        emit_visits(b, rng, np.array([1]), line_repeats=2, **self.args())
        refs = [arg for kind, arg in b.build() if kind in (EV_READ, EV_WRITE)]
        assert refs[0] == refs[1] and refs[2] == refs[3]

    def test_scatter_preserves_multiset(self):
        ordered, scattered = TraceBuilder(), TraceBuilder()
        emit_visits(ordered, np.random.default_rng(1), np.array([1, 2, 3, 4]),
                    **self.args())
        emit_visits(scattered, np.random.default_rng(1), np.array([1, 2, 3, 4]),
                    scatter=True, scatter_window=0, **self.args())
        refs_o = sorted(a for k, a in ordered.build() if k == EV_READ)
        refs_s = sorted(a for k, a in scattered.build() if k == EV_READ)
        assert refs_o == refs_s

    def test_scatter_window_bounds_displacement(self):
        b = TraceBuilder()
        rng = np.random.default_rng(1)
        pages = np.arange(100, 116)
        emit_visits(b, rng, pages, scatter=True, scatter_window=2,
                    **self.args())
        refs = [a for k, a in b.build() if k == EV_READ]
        # Window = 2 visits x 4 lines: a page's lines stay within their
        # 8-ref window.
        for i, line in enumerate(refs):
            window = i // 8
            page_index = (line // LPP) - 100
            assert page_index // 2 == window

    def test_write_fraction_zero_and_one(self):
        b = TraceBuilder()
        rng = np.random.default_rng(0)
        emit_visits(b, rng, np.array([1, 2]), lines_per_visit=4,
                    lines_per_page=LPP, write_fraction=1.0,
                    compute_per_visit=1)
        t = b.build()
        assert t.count(EV_WRITE) == 8 and t.count(EV_READ) == 0


class TestSyntheticModule:
    def test_generate_by_kwargs(self):
        wl = synthetic.generate(n_nodes=2, home_pages_per_node=4,
                                remote_pages_per_node=4, sweeps=2,
                                home_lines_per_sweep=8)
        assert wl.n_nodes == 2
        assert wl.name == "synthetic"

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            generate_workload("linpack")


class TestSpecValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", n_nodes=1)
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", hot_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", sweeps=0)
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", write_fraction=-0.1)

    def test_ideal_pressure(self):
        spec = WorkloadSpec(name="x", home_pages_per_node=60,
                            remote_pages_per_node=40)
        assert spec.ideal_pressure() == 0.6
