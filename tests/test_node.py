"""Unit tests for the Node model's page-management operations."""

import pytest

from repro.coherence.directory import Directory
from repro.core import ASCOMAPolicy, SCOMAPolicy, VCNUMAPolicy
from repro.kernel.vm import PageMode
from repro.sim.config import SystemConfig
from repro.sim.node import Node


def make_node(policy=None, cache_frames=4, pressure=0.5):
    cfg = SystemConfig(n_nodes=4, memory_pressure=pressure,
                       model_contention=False)
    amap = cfg.address_map()
    directory = Directory(4, amap.chunks_per_page)
    policy = policy or ASCOMAPolicy(threshold=8, increment=4)
    node = Node(0, cfg, amap, directory, policy, cache_frames,
                cache_frames + 10)
    return node, directory, amap


class TestInvalidation:
    def test_invalidate_chunk_clears_l1_rac_valid(self):
        node, directory, amap = make_node()
        page, chunk = 5, 5 * amap.chunks_per_page
        assert node.pool.try_allocate()
        node.map_scoma(page)
        node.page_table.set_chunk_valid(page, 0)
        for line in amap.lines_of_chunk(chunk):
            node.l1.fill(line)
        node.rac.fill(chunk)
        node.owned.add(chunk)

        node.invalidate_chunk(chunk)
        assert all(not node.l1.contains(line) for line in amap.lines_of_chunk(chunk))
        assert not node.rac.contains(chunk)
        assert chunk not in node.owned
        assert not node.page_table.chunk_valid(page, 0)

    def test_demote_only_drops_ownership(self):
        node, _, amap = make_node()
        chunk = 3
        node.owned.add(chunk)
        node.l1.fill(amap.lines_of_chunk(chunk)[0])
        node.demote_chunk(chunk)
        assert chunk not in node.owned
        assert node.l1.contains(amap.lines_of_chunk(chunk)[0])


class TestFlushPage:
    def test_flush_drops_directory_membership(self):
        node, directory, amap = make_node()
        page = 2
        chunk = page * amap.chunks_per_page
        directory.fetch(0, chunk, page, False, 0)
        node.l1.fill(amap.line_id(page, 0))
        flushed = node.flush_page(page)
        assert flushed == 1
        assert not directory.is_cached_by(chunk, 0)

    def test_flush_clears_owned_chunks(self):
        node, _, amap = make_node()
        page = 2
        chunk = page * amap.chunks_per_page + 3
        node.owned.add(chunk)
        node.flush_page(page)
        assert chunk not in node.owned


class TestEviction:
    def test_evict_returns_frame_and_downgrades(self):
        node, _, amap = make_node()
        assert node.pool.try_allocate()
        free_before = node.pool.free
        node.map_scoma(7)
        cost = node.evict_scoma_page(7, forced=False)
        assert cost > 0
        assert node.pool.free == free_before + 1
        assert node.page_table.mode_of(7) == PageMode.CCNUMA
        assert node.stats.evictions == 1

    def test_scoma_policy_evicts_to_unmapped(self):
        node, _, _ = make_node(policy=SCOMAPolicy())
        node.pool.try_allocate()
        node.map_scoma(7)
        node.evict_scoma_page(7, forced=True)
        assert node.page_table.mode_of(7) == PageMode.UNMAPPED
        assert node.stats.forced_evictions == 1

    def test_evict_resets_refetch_counter(self):
        node, directory, amap = make_node()
        page = 7
        directory.refetch_count[(page, 0)] = 5
        node.pool.try_allocate()
        node.map_scoma(page)
        node.evict_scoma_page(page, forced=False)
        assert directory.refetches_of(page, 0) == 0

    def test_evict_reports_pagecache_hits_to_policy(self):
        policy = VCNUMAPolicy(threshold=8, break_even=4, increment=4,
                              min_evictions_per_eval=1)
        node, _, _ = make_node(policy=policy)
        # Two losing evictions reach the detector's cadence (2 x 1 page).
        for _ in range(2):
            node.pool.try_allocate()
            node.map_scoma(7)
            node.pagecache_hits[7] = 3  # below break-even of 4: a loser
            node.evict_scoma_page(7, forced=True)
        assert node.policy_state.detector.threshold > 8


class TestRelocation:
    def test_relocate_ccnuma_page(self):
        node, directory, amap = make_node()
        page = 3
        node.page_table.map_ccnuma(page)
        node.pool.try_allocate()
        cost = node.relocate_to_scoma(page)
        assert cost >= node.costs.relocation_interrupt + node.costs.page_remap
        assert node.page_table.mode_of(page) == PageMode.SCOMA
        assert node.stats.relocations == 1

    def test_relocate_flushes_cached_lines(self):
        node, _, amap = make_node()
        page = 3
        line = amap.line_id(page, 0)
        node.page_table.map_ccnuma(page)
        node.l1.fill(line)
        node.pool.try_allocate()
        node.relocate_to_scoma(page)
        assert not node.l1.contains(line)


class TestVictimSelection:
    def test_unreferenced_page_chosen(self):
        node, _, _ = make_node()
        for page in (1, 2, 3):
            node.pool.try_allocate()
            node.map_scoma(page)
        node.tlb.ref_bits[1] = True
        node.tlb.ref_bits[2] = False
        node.tlb.ref_bits[3] = True
        assert node.choose_victim() == 2

    def test_all_referenced_falls_back_to_front(self):
        node, _, _ = make_node()
        for page in (1, 2, 3):
            node.pool.try_allocate()
            node.map_scoma(page)
            node.tlb.ref_bits[page] = True
        victim = node.choose_victim()
        assert victim in (1, 2, 3)
        # All reference bits were cleared by the rotation.
        assert all(not node.tlb.reference_bit(p) for p in (1, 2, 3))

    def test_empty_cache_raises(self):
        node, _, _ = make_node()
        with pytest.raises(RuntimeError):
            node.choose_victim()


class TestDaemonIntegration:
    def test_acquire_frame_runs_daemon_when_low(self):
        node, _, _ = make_node(cache_frames=3)
        # Fill the cache with cold pages (ref bits cleared).
        for page in (1, 2, 3):
            assert node.pool.try_allocate()
            node.map_scoma(page)
            node.tlb.ref_bits[page] = False
        assert node.pool.free == 0
        got = node.acquire_frame(now=10**6)
        assert got
        assert node.stats.daemon_runs == 1
        assert node.stats.evictions >= 1

    def test_daemon_thrash_reported_to_policy(self):
        policy = ASCOMAPolicy(threshold=8, increment=4)
        node, _, _ = make_node(policy=policy, cache_frames=3)
        for page in (1, 2, 3):
            node.pool.try_allocate()
            node.map_scoma(page)
            node.tlb.ref_bits[page] = True  # everything hot
        node.run_daemon_if_due(now=10**6)
        assert node.stats.daemon_thrash == 1
        assert node.policy_state.backoff.threshold > 8
