"""Property-based tests over the workload generation framework."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mem.address import AddressMap
from repro.sim.trace import EV_BARRIER, EV_COMPUTE, EV_LOCAL, EV_READ, EV_WRITE
from repro.workloads.base import SyntheticGenerator, WorkloadSpec

LPP = AddressMap().lines_per_page

spec_params = st.fixed_dictionaries({
    "n_nodes": st.sampled_from([2, 4, 8]),
    "home_pages_per_node": st.integers(2, 12),
    "remote_pages_per_node": st.integers(1, 16),
    "hot_fraction": st.floats(0.0, 1.0),
    "sweeps": st.integers(1, 6),
    "lines_per_visit": st.sampled_from([1, 4, 8, 16]),
    "visit_cluster": st.integers(1, 4),
    "write_fraction": st.floats(0.0, 1.0),
    "line_repeats": st.integers(1, 3),
    "scatter_lines": st.booleans(),
    "scatter_window": st.integers(0, 8),
    "seed": st.integers(0, 2**20),
})


def build(params):
    params = dict(params)
    params["name"] = "prop"
    params["home_lines_per_sweep"] = 16
    params["local_cycles_per_sweep"] = 10
    params["compute_per_ref"] = 1.0
    return SyntheticGenerator(WorkloadSpec(**params)).generate()


class TestGeneratedWorkloads:
    @given(spec_params)
    @settings(max_examples=40, deadline=None)
    def test_structural_invariants(self, params):
        wl = build(params)
        spec_sweeps = params["sweeps"]
        n = params["n_nodes"]
        h = params["home_pages_per_node"]
        assert wl.n_nodes == n
        for node, trace in enumerate(wl.traces):
            # Barrier count: prologue barrier + one per sweep.
            assert trace.barriers() == spec_sweeps + 1
            # All referenced pages live in the shared address space.
            pages = trace.pages_touched(LPP)
            assert pages and max(pages) < n * h
            # Every own home page appears (prologue guarantee).
            own = set(range(node * h, (node + 1) * h))
            assert own <= pages
            # Event kinds are from the known alphabet.
            kinds = set(np.unique(trace.kinds).tolist())
            assert kinds <= {EV_READ, EV_WRITE, EV_COMPUTE, EV_LOCAL,
                             EV_BARRIER}

    @given(spec_params)
    @settings(max_examples=20, deadline=None)
    def test_determinism(self, params):
        a, b = build(params), build(params)
        for ta, tb in zip(a.traces, b.traces):
            assert np.array_equal(ta.kinds, tb.kinds)
            assert np.array_equal(ta.args, tb.args)

    @given(spec_params)
    @settings(max_examples=20, deadline=None)
    def test_write_fraction_bounds(self, params):
        wl = build(params)
        trace = wl.traces[0]
        reads = trace.count(EV_READ)
        writes = trace.count(EV_WRITE)
        total = reads + writes
        if total > 200:
            measured = writes / total
            expected = params["write_fraction"]
            # Prologue reads bias downward slightly; allow slack.
            assert measured <= expected + 0.15
            if expected > 0.2:
                assert measured >= expected / 3

    @given(spec_params)
    @settings(max_examples=20, deadline=None)
    def test_replayable_without_error(self, params):
        """Any generated workload must replay cleanly end to end."""
        from repro.core import make_policy
        from repro.sim.config import SystemConfig
        from repro.sim.engine import simulate
        wl = build(params)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.7)
        result = simulate(wl, make_policy("ascoma", threshold=4, increment=2),
                          cfg)
        agg = result.aggregate()
        assert agg.l1_hits + agg.l1_misses == wl.total_refs()
        assert agg.total_cycles() > 0
