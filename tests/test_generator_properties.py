"""Property-based tests over the workload generation framework."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mem.address import AddressMap
from repro.sim.trace import (EV_BARRIER, EV_COMPUTE, EV_LOCAL, EV_READ,
                             EV_WRITE, Trace, WorkloadTraces, coalesce_events)
from repro.workloads.base import SyntheticGenerator, WorkloadSpec

LPP = AddressMap().lines_per_page

spec_params = st.fixed_dictionaries({
    "n_nodes": st.sampled_from([2, 4, 8]),
    "home_pages_per_node": st.integers(2, 12),
    "remote_pages_per_node": st.integers(1, 16),
    "hot_fraction": st.floats(0.0, 1.0),
    "sweeps": st.integers(1, 6),
    "lines_per_visit": st.sampled_from([1, 4, 8, 16]),
    "visit_cluster": st.integers(1, 4),
    "write_fraction": st.floats(0.0, 1.0),
    "line_repeats": st.integers(1, 3),
    "scatter_lines": st.booleans(),
    "scatter_window": st.integers(0, 8),
    "seed": st.integers(0, 2**20),
})


def build(params):
    params = dict(params)
    params["name"] = "prop"
    params["home_lines_per_sweep"] = 16
    params["local_cycles_per_sweep"] = 10
    params["compute_per_ref"] = 1.0
    return SyntheticGenerator(WorkloadSpec(**params)).generate()


class TestGeneratedWorkloads:
    @given(spec_params)
    @settings(max_examples=40, deadline=None)
    def test_structural_invariants(self, params):
        wl = build(params)
        spec_sweeps = params["sweeps"]
        n = params["n_nodes"]
        h = params["home_pages_per_node"]
        assert wl.n_nodes == n
        for node, trace in enumerate(wl.traces):
            # Barrier count: prologue barrier + one per sweep.
            assert trace.barriers() == spec_sweeps + 1
            # All referenced pages live in the shared address space.
            pages = trace.pages_touched(LPP)
            assert pages and max(pages) < n * h
            # Every own home page appears (prologue guarantee).
            own = set(range(node * h, (node + 1) * h))
            assert own <= pages
            # Event kinds are from the known alphabet.
            kinds = set(np.unique(trace.kinds).tolist())
            assert kinds <= {EV_READ, EV_WRITE, EV_COMPUTE, EV_LOCAL,
                             EV_BARRIER}

    @given(spec_params)
    @settings(max_examples=20, deadline=None)
    def test_determinism(self, params):
        a, b = build(params), build(params)
        for ta, tb in zip(a.traces, b.traces):
            assert np.array_equal(ta.kinds, tb.kinds)
            assert np.array_equal(ta.args, tb.args)

    @given(spec_params)
    @settings(max_examples=20, deadline=None)
    def test_write_fraction_bounds(self, params):
        wl = build(params)
        trace = wl.traces[0]
        reads = trace.count(EV_READ)
        writes = trace.count(EV_WRITE)
        total = reads + writes
        if total > 200:
            measured = writes / total
            expected = params["write_fraction"]
            # Prologue reads bias downward slightly; allow slack.
            assert measured <= expected + 0.15
            if expected > 0.2:
                assert measured >= expected / 3

MERGEABLE = (EV_COMPUTE, EV_LOCAL)

#: Arbitrary raw event streams (not necessarily replayable): the
#: coalescer's contract is purely structural, so it must hold for any
#: well-formed (kinds, args) pair, not just generator output.
raw_events = st.lists(
    st.one_of(
        st.tuples(st.sampled_from([EV_READ, EV_WRITE]), st.integers(0, 512)),
        st.tuples(st.sampled_from(list(MERGEABLE)), st.integers(1, 64)),
        st.tuples(st.just(EV_BARRIER), st.integers(0, 8)),
    ),
    max_size=200,
)


def to_arrays(events):
    kinds = np.array([k for k, _ in events], dtype=np.uint8)
    args = np.array([a for _, a in events], dtype=np.int64)
    return kinds, args


def split_bursts(kinds, args, seed):
    """Inverse-ish of coalescing: split cycle bursts into adjacent runs."""
    rng = np.random.default_rng(seed)
    out_k, out_a = [], []
    for k, a in zip(kinds.tolist(), args.tolist()):
        if k in MERGEABLE and a >= 2 and rng.random() < 0.7:
            cut = int(rng.integers(1, a))
            out_k += [k, k]
            out_a += [cut, a - cut]
        else:
            out_k.append(k)
            out_a.append(a)
    return np.array(out_k, dtype=np.uint8), np.array(out_a, dtype=np.int64)


class TestCoalescing:
    @given(raw_events)
    @settings(max_examples=60, deadline=None)
    def test_structural_invariants(self, events):
        kinds, args = to_arrays(events)
        ck, ca = coalesce_events(kinds, args)
        # Per-kind cycle totals are preserved (so U_INSTR / U_LC_MEM
        # accounting cannot move), and so are reference/barrier counts.
        for kind in (EV_COMPUTE, EV_LOCAL):
            assert ca[ck == kind].sum() == args[kinds == kind].sum()
        # The non-mergeable subsequence (refs + barriers) is untouched,
        # in order -- coalescing cannot reorder or absorb a shared
        # reference, so barrier alignment across nodes is preserved.
        keep = ~np.isin(kinds, MERGEABLE)
        ckeep = ~np.isin(ck, MERGEABLE)
        assert np.array_equal(kinds[keep], ck[ckeep])
        assert np.array_equal(args[keep], ca[ckeep])
        # Nothing mergeable remains adjacent.
        same = (ck[1:] == ck[:-1]) & np.isin(ck[1:], MERGEABLE)
        assert not same.any()
        # Idempotence: a second pass is the identity.
        ck2, ca2 = coalesce_events(ck, ca)
        assert np.array_equal(ck, ck2) and np.array_equal(ca, ca2)

    @given(spec_params, st.integers(0, 2**20))
    @settings(max_examples=20, deadline=None)
    def test_coalesce_inverts_burst_splitting(self, params, seed):
        """Generator output is already coalesced, so splitting its
        bursts and re-coalescing must reconstruct it exactly."""
        trace = build(params).traces[0]
        sk, sa = split_bursts(trace.kinds, trace.args, seed)
        ck, ca = coalesce_events(sk, sa)
        assert np.array_equal(ck, trace.kinds)
        assert np.array_equal(ca, trace.args)

    @given(spec_params, st.integers(0, 2**20))
    @settings(max_examples=8, deadline=None)
    def test_replay_invariant_under_coalescing(self, params, seed):
        """Replay is bit-identical across coalescing, given a quantum
        larger than any trace's total cycles.

        Under such a quantum every node runs straight to each barrier,
        so event *boundaries* inside a cycle burst are unobservable and
        only the (preserved) cycle sums matter.  Arbitrary quanta can
        legitimately shift the cross-node interleaving -- slice limits
        are checked per event -- which is why the generators coalesce
        at build time, not at replay time.
        """
        from repro.core import make_policy
        from repro.sim.config import SystemConfig
        from repro.sim.engine import Engine

        wl = build(params)
        split = WorkloadTraces(
            wl.name,
            [Trace(*split_bursts(t.kinds, t.args, seed + i))
             for i, t in enumerate(wl.traces)],
            wl.home_pages_per_node, wl.total_shared_pages)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.7)

        def replay(workload):
            policy = make_policy("ascoma", threshold=4, increment=2)
            return Engine(workload, policy, config=cfg,
                          quantum=10**9).run().to_dict()

        assert replay(split) == replay(wl)


class TestReplayability:
    @given(spec_params)
    @settings(max_examples=20, deadline=None)
    def test_replayable_without_error(self, params):
        """Any generated workload must replay cleanly end to end."""
        from repro.core import make_policy
        from repro.sim.config import SystemConfig
        from repro.sim.engine import simulate
        wl = build(params)
        cfg = SystemConfig(n_nodes=wl.n_nodes, memory_pressure=0.7)
        result = simulate(wl, make_policy("ascoma", threshold=4, increment=2),
                          cfg)
        agg = result.aggregate()
        assert agg.l1_hits + agg.l1_misses == wl.total_refs()
        assert agg.total_cycles() > 0
