"""Unit tests for topologies, the network model and the bus."""

import pytest

from repro.interconnect.bus import SplitTransactionBus
from repro.interconnect.network import Network
from repro.interconnect.topology import (MeshTopology, RingTopology,
                                         SwitchTopology)


class TestSwitchTopology:
    def test_self_is_zero_hops(self):
        assert SwitchTopology(8).hops(3, 3) == 0

    def test_same_switch_one_hop(self):
        topo = SwitchTopology(8, radix=4)
        assert topo.hops(0, 3) == 1

    def test_cross_switch_two_hops(self):
        topo = SwitchTopology(8, radix=4)
        assert topo.hops(0, 4) == 2

    def test_small_machine_is_single_crossbar(self):
        topo = SwitchTopology(4, radix=4)
        for a in range(4):
            for b in range(4):
                assert topo.hops(a, b) == (0 if a == b else 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SwitchTopology(8).hops(0, 8)

    def test_bad_radix_rejected(self):
        with pytest.raises(ValueError):
            SwitchTopology(8, radix=1)


class TestRingAndMesh:
    def test_ring_shortest_path(self):
        topo = RingTopology(8)
        assert topo.hops(0, 1) == 1
        assert topo.hops(0, 7) == 1  # wraps
        assert topo.hops(0, 4) == 4

    def test_mesh_manhattan(self):
        topo = MeshTopology(8)  # 2x4 or 4x2
        assert topo.hops(0, 0) == 0
        assert topo.hops(0, topo.width - 1) == topo.width - 1

    def test_mesh_symmetry(self):
        topo = MeshTopology(16)
        for a in range(16):
            for b in range(16):
                assert topo.hops(a, b) == topo.hops(b, a)


class TestNetwork:
    def test_min_one_way(self):
        net = Network(SwitchTopology(8), propagation=2, fall_through=4)
        assert net.min_one_way(0, 1) == 6
        assert net.min_one_way(0, 4) == 8
        assert net.min_one_way(2, 2) == 0

    def test_one_way_uncontended_equals_min(self):
        net = Network(SwitchTopology(8), port_occupancy=0)
        assert net.one_way(0, 1, now=0) == net.min_one_way(0, 1)

    def test_same_node_is_free(self):
        net = Network(SwitchTopology(8))
        assert net.one_way(3, 3, now=0) == 0

    def test_input_port_contention(self):
        net = Network(SwitchTopology(8), propagation=2, fall_through=4,
                      port_occupancy=8)
        first = net.one_way(0, 1, now=0)
        second = net.one_way(2, 1, now=0)  # same destination port
        assert second == first + 8

    def test_contention_drains_over_time(self):
        net = Network(SwitchTopology(8), port_occupancy=8)
        net.one_way(0, 1, now=0)
        assert net.one_way(2, 1, now=100) == net.min_one_way(2, 1)

    def test_round_trip(self):
        net = Network(SwitchTopology(8), port_occupancy=0)
        assert net.round_trip(0, 1, 0) == 12

    def test_stats(self):
        net = Network(SwitchTopology(8), port_occupancy=8)
        net.one_way(0, 1, 0)
        net.one_way(2, 1, 0)
        stats = net.utilisation_stats()
        assert stats["messages"] == 2
        assert stats["contended_messages"] == 1

    def test_rejects_negative_params(self):
        with pytest.raises(ValueError):
            Network(SwitchTopology(4), propagation=-1)


class TestBus:
    def test_uncontended_cost_is_fixed(self):
        bus = SplitTransactionBus(occupancy=4, fixed_cost=2)
        assert bus.transact(0) == 2

    def test_back_to_back_queues(self):
        bus = SplitTransactionBus(occupancy=4)
        assert bus.transact(0) == 0
        assert bus.transact(0) == 4
        assert bus.transact(0) == 8

    def test_queue_drains(self):
        bus = SplitTransactionBus(occupancy=4)
        bus.transact(0)
        assert bus.transact(10) == 0

    def test_stats(self):
        bus = SplitTransactionBus(occupancy=4)
        bus.transact(0)
        bus.transact(0)
        s = bus.utilisation_stats()
        assert s["transactions"] == 2 and s["contended"] == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SplitTransactionBus(occupancy=-1)
