"""Unit tests for the five architecture policies."""

import pytest

from repro.core import (ASCOMAPolicy, CCNUMAPolicy, POLICIES, RNUMAPolicy,
                        SCOMAPolicy, VCNUMAPolicy, make_policy)
from repro.core.policy import RelocationDecision
from repro.kernel.costs import KernelCosts
from repro.kernel.freelist import FreePagePool
from repro.kernel.pageout import DaemonRunResult, PageoutDaemon
from repro.kernel.vm import PageMode, PageTable


def daemon_result(reclaimed, target):
    return DaemonRunResult(reclaimed=reclaimed, scanned=0, target=target,
                           cost=0)


def make_daemon():
    pt = PageTable(32)
    pool = FreePagePool(4, 100)
    return PageoutDaemon(pt, pool, KernelCosts(),
                         reference_bit=lambda p: False,
                         clear_reference_bit=lambda p: None,
                         evict=lambda p: None, base_interval=1000)


class TestRegistry:
    def test_all_architectures_present(self):
        assert set(POLICIES) == {"CCNUMA", "CCNUMAMIG", "SCOMA", "RNUMA",
                                 "VCNUMA", "ASCOMA"}

    @pytest.mark.parametrize("name", ["ccnuma", "S-COMA", "as_coma", "AsCoMa"])
    def test_name_normalisation(self, name):
        assert make_policy(name) is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            make_policy("numa")

    def test_kwargs_forwarded(self):
        policy = make_policy("rnuma", threshold=7)
        assert policy.make_node_state().threshold == 7


class TestCCNUMA:
    def test_always_ccnuma_mode(self):
        policy = CCNUMAPolicy()
        state = policy.make_node_state()
        assert policy.initial_mode(state, free_frames=100) == PageMode.CCNUMA

    def test_threshold_disabled(self):
        state = CCNUMAPolicy().make_node_state()
        assert state.effective_threshold() == 0

    def test_no_page_cache(self):
        assert not CCNUMAPolicy().uses_page_cache

    def test_hint_skipped(self):
        policy = CCNUMAPolicy()
        assert policy.on_relocation_hint(policy.make_node_state(), 5) == \
            RelocationDecision.SKIP


class TestSCOMA:
    def test_always_scoma_mode_even_when_dry(self):
        policy = SCOMAPolicy()
        state = policy.make_node_state()
        assert policy.initial_mode(state, free_frames=0) == PageMode.SCOMA

    def test_evicts_to_unmapped(self):
        assert not SCOMAPolicy().evict_to_ccnuma

    def test_threshold_disabled(self):
        assert SCOMAPolicy().make_node_state().effective_threshold() == 0


class TestRNUMA:
    def test_starts_ccnuma(self):
        policy = RNUMAPolicy()
        state = policy.make_node_state()
        assert policy.initial_mode(state, free_frames=100) == PageMode.CCNUMA

    def test_paper_default_threshold(self):
        assert RNUMAPolicy().make_node_state().threshold == 64

    def test_relocates_unconditionally(self):
        policy = RNUMAPolicy()
        state = policy.make_node_state()
        assert policy.on_relocation_hint(state, free_frames=0) == \
            RelocationDecision.RELOCATE

    def test_no_backoff_on_thrash(self):
        policy = RNUMAPolicy(threshold=16)
        state = policy.make_node_state()
        daemon = make_daemon()
        policy.on_daemon_result(state, daemon_result(0, 4), daemon)
        assert state.effective_threshold() == 16  # unchanged

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            RNUMAPolicy(threshold=0)


class TestVCNUMA:
    def test_starts_ccnuma(self):
        policy = VCNUMAPolicy()
        state = policy.make_node_state()
        assert policy.initial_mode(state, 100) == PageMode.CCNUMA

    def test_relocates_unconditionally(self):
        policy = VCNUMAPolicy()
        assert policy.on_relocation_hint(policy.make_node_state(), 0) == \
            RelocationDecision.RELOCATE

    def test_threshold_rises_after_losing_evictions(self):
        policy = VCNUMAPolicy(threshold=16, break_even=8, increment=8,
                              min_evictions_per_eval=4)
        state = policy.make_node_state()
        state.cached_pages = 2
        for _ in range(4):  # 4 evictions with 0 page-cache hits: all losers
            policy.on_page_evicted(state, page=1, pagecache_hits=0)
        assert state.effective_threshold() == 24

    def test_threshold_recovers_after_winning_evictions(self):
        policy = VCNUMAPolicy(threshold=16, break_even=8, increment=8,
                              min_evictions_per_eval=4)
        state = policy.make_node_state()
        state.cached_pages = 2
        for _ in range(4):
            policy.on_page_evicted(state, 1, pagecache_hits=0)
        for _ in range(4):
            policy.on_page_evicted(state, 1, pagecache_hits=100)
        assert state.effective_threshold() == 16

    def test_evaluation_cadence_respected(self):
        policy = VCNUMAPolicy(threshold=16, break_even=8, increment=8,
                              min_evictions_per_eval=8)
        state = policy.make_node_state()
        state.cached_pages = 1
        for _ in range(7):
            policy.on_page_evicted(state, 1, pagecache_hits=0)
        assert state.effective_threshold() == 16  # not evaluated yet


class TestASCOMA:
    def test_scoma_first_while_frames_free(self):
        policy = ASCOMAPolicy()
        state = policy.make_node_state()
        assert policy.initial_mode(state, free_frames=1) == PageMode.SCOMA

    def test_ccnuma_when_pool_dry(self):
        policy = ASCOMAPolicy()
        state = policy.make_node_state()
        assert policy.initial_mode(state, free_frames=0) == PageMode.CCNUMA

    def test_never_force_evicts_for_relocation(self):
        policy = ASCOMAPolicy()
        state = policy.make_node_state()
        assert policy.on_relocation_hint(state, free_frames=0) == \
            RelocationDecision.RELOCATE_IF_FREE

    def test_thrash_raises_threshold_and_stretches_daemon(self):
        policy = ASCOMAPolicy(threshold=16, increment=8)
        state = policy.make_node_state()
        daemon = make_daemon()
        policy.on_daemon_result(state, daemon_result(0, 4), daemon)
        assert state.effective_threshold() == 24
        assert daemon.interval > daemon.base_interval

    def test_relocation_disabled_after_consecutive_thrash(self):
        policy = ASCOMAPolicy(threshold=16, increment=8, disable_after=3)
        state = policy.make_node_state()
        daemon = make_daemon()
        for _ in range(3):
            policy.on_daemon_result(state, daemon_result(0, 4), daemon)
        assert state.effective_threshold() == 0  # relocation off

    def test_recovery_lowers_threshold_and_re_enables(self):
        policy = ASCOMAPolicy(threshold=16, increment=8, disable_after=2)
        state = policy.make_node_state()
        daemon = make_daemon()
        for _ in range(2):
            policy.on_daemon_result(state, daemon_result(0, 4), daemon)
        assert state.effective_threshold() == 0
        policy.on_daemon_result(state, daemon_result(4, 4), daemon)
        assert state.effective_threshold() > 0
        assert daemon.interval == daemon.base_interval

    def test_threshold_never_drops_below_base(self):
        policy = ASCOMAPolicy(threshold=16, increment=8)
        state = policy.make_node_state()
        daemon = make_daemon()
        for _ in range(5):
            policy.on_daemon_result(state, daemon_result(4, 4), daemon)
        assert state.backoff.threshold == 16

    def test_ablation_flags(self):
        no_first = ASCOMAPolicy(scoma_first=False)
        state = no_first.make_node_state()
        assert no_first.initial_mode(state, 100) == PageMode.CCNUMA

        no_adapt = ASCOMAPolicy(adaptive=False, threshold=16)
        state = no_adapt.make_node_state()
        no_adapt.on_daemon_result(state, daemon_result(0, 4), make_daemon())
        assert state.effective_threshold() == 16

    def test_describe_mentions_backoff(self):
        desc = ASCOMAPolicy().describe()
        assert "backoff" in desc
        assert desc["scoma_first"] is True


class TestDescribe:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_every_policy_describes_itself(self, name):
        desc = make_policy(name).describe()
        # Display names may carry punctuation the registry key drops.
        assert desc["name"].replace("-", "") == name
        assert "uses_page_cache" in desc
