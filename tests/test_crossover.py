"""Unit tests for the crossover-pressure bisection."""

import pytest

from repro.harness.crossover import (crossover_report, find_crossover,
                                     relative_time_at)

SCALE = 0.25


class TestRelativeTime:
    def test_ccnuma_is_unity(self):
        assert relative_time_at("fft", "CCNUMA", 0.5, SCALE) == \
            pytest.approx(1.0, abs=0.01)

    def test_scoma_low_pressure_below_one(self):
        assert relative_time_at("em3d", "SCOMA", 0.1, SCALE) < 0.9

    def test_scoma_high_pressure_above_one(self):
        assert relative_time_at("em3d", "SCOMA", 0.9, SCALE) > 1.5


class TestFindCrossover:
    def test_scoma_crossover_between_endpoints(self):
        crossover = find_crossover("em3d", "SCOMA", scale=SCALE, tol=0.05)
        assert crossover is not None
        assert 0.2 < crossover < 0.9

    def test_crossover_brackets_the_sign_change(self):
        crossover = find_crossover("em3d", "SCOMA", scale=SCALE, tol=0.05)
        assert relative_time_at("em3d", "SCOMA",
                                max(0.05, crossover - 0.1), SCALE) < 1.0
        assert relative_time_at("em3d", "SCOMA",
                                min(0.95, crossover + 0.1), SCALE) > 1.0

    def test_never_crossing_returns_none(self):
        # AS-COMA never falls behind CC-NUMA on lu.
        assert find_crossover("lu", "ASCOMA", scale=SCALE, tol=0.1) is None

    def test_always_behind_returns_lo(self):
        # R-NUMA on fft hovers at ~1.01: crossed from the start.
        result = find_crossover("fft", "RNUMA", scale=SCALE, tol=0.1)
        assert result == pytest.approx(0.05) or result is None


class TestReport:
    def test_report_shape(self):
        rows = crossover_report(apps=("fft",), archs=("SCOMA",), scale=SCALE)
        assert len(rows) == 1
        row = rows[0]
        assert set(row) == {"app", "arch", "ideal_pressure",
                            "crossover_pressure"}
        assert 0 < row["ideal_pressure"] < 1
