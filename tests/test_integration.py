"""End-to-end integration tests: the paper's qualitative claims.

Each test asserts a *shape* from the paper's evaluation (Section 5) --
who wins, where the crossovers are -- on scaled-down workloads.  These
are the reproduction's acceptance tests: if a refactor breaks one of
these, it broke the result the paper is about.
"""

import pytest

from repro.harness.experiment import run_app

SCALE = 0.35


def rel(app, arch, pressure, baseline):
    run = run_app(app, arch, pressure, scale=SCALE)
    return run.aggregate().total_cycles() / baseline


@pytest.fixture(scope="module")
def em3d_baseline():
    return run_app("em3d", "CCNUMA", 0.5, scale=SCALE).aggregate().total_cycles()


@pytest.fixture(scope="module")
def radix_baseline():
    return run_app("radix", "CCNUMA", 0.5, scale=SCALE).aggregate().total_cycles()


class TestCCNUMAInsensitivity:
    def test_pressure_does_not_move_ccnuma(self):
        lo = run_app("em3d", "CCNUMA", 0.1, scale=SCALE)
        hi = run_app("em3d", "CCNUMA", 0.9, scale=SCALE)
        a, b = lo.aggregate().total_cycles(), hi.aggregate().total_cycles()
        assert abs(a - b) / a < 0.01

    def test_ccnuma_never_pays_kernel_overhead(self):
        run = run_app("em3d", "CCNUMA", 0.9, scale=SCALE)
        assert run.aggregate().K_OVERHD == 0
        assert run.aggregate().relocations == 0


class TestLowPressure:
    """Section 5.1: S-COMA-preferred allocation at 10% pressure."""

    def test_ascoma_equals_scoma_at_low_pressure(self, em3d_baseline):
        ascoma = rel("em3d", "ASCOMA", 0.1, em3d_baseline)
        scoma = rel("em3d", "SCOMA", 0.1, em3d_baseline)
        assert ascoma == pytest.approx(scoma, rel=0.02)

    @pytest.mark.parametrize("app", ["barnes", "em3d", "lu", "radix"])
    def test_ascoma_beats_ccnuma_at_low_pressure(self, app):
        base = run_app(app, "CCNUMA", 0.5, scale=SCALE).aggregate().total_cycles()
        assert rel(app, "ASCOMA", 0.1, base) < 0.85

    def test_ascoma_beats_rnuma_on_radix_at_low_pressure(self, radix_baseline):
        """The paper's headline low-pressure result: up to ~17% on radix
        from S-COMA-first allocation."""
        ascoma = rel("radix", "ASCOMA", 0.1, radix_baseline)
        rnuma = rel("radix", "RNUMA", 0.1, radix_baseline)
        assert ascoma < rnuma * 0.9

    def test_no_relocations_needed_at_low_pressure(self):
        run = run_app("em3d", "ASCOMA", 0.1, scale=SCALE)
        assert run.aggregate().relocations == 0

    def test_hybrids_identical_when_not_thrashing(self, em3d_baseline):
        """VC-NUMA's detector never fires without evictions, so it must
        match R-NUMA exactly at low pressure (paper Section 5.2)."""
        r = rel("em3d", "RNUMA", 0.1, em3d_baseline)
        v = rel("em3d", "VCNUMA", 0.1, em3d_baseline)
        assert r == pytest.approx(v, rel=0.01)


class TestSCOMACollapse:
    """Section 5: pure S-COMA's performance drops off a cliff."""

    def test_scoma_collapses_on_em3d(self, em3d_baseline):
        low = rel("em3d", "SCOMA", 0.1, em3d_baseline)
        high = rel("em3d", "SCOMA", 0.9, em3d_baseline)
        assert high > 2.0
        assert high > 3 * low

    def test_scoma_collapses_early_on_radix(self, radix_baseline):
        """Radix's tiny ideal pressure: S-COMA is already several times
        worse than CC-NUMA at 30% (paper: 'as low as 30%')."""
        assert rel("radix", "SCOMA", 0.3, radix_baseline) > 2.0

    def test_collapse_is_kernel_overhead(self):
        run = run_app("em3d", "SCOMA", 0.9, scale=SCALE)
        agg = run.aggregate()
        assert agg.K_OVERHD / agg.total_cycles() > 0.2
        assert agg.forced_evictions > 0

    def test_scoma_fine_at_high_pressure_on_fft(self):
        """fft stays below its ideal pressure until ~80%."""
        base = run_app("fft", "CCNUMA", 0.5, scale=SCALE).aggregate().total_cycles()
        assert rel("fft", "SCOMA", 0.7, base) < 1.1


class TestHighPressureHybrids:
    """Section 5.2: thrashing detection separates the hybrids."""

    def test_rnuma_falls_behind_ccnuma_on_em3d(self, em3d_baseline):
        assert rel("em3d", "RNUMA", 0.9, em3d_baseline) > 1.05

    def test_ascoma_stays_near_ccnuma_at_extreme_pressure(self, em3d_baseline,
                                                          radix_baseline):
        """Paper: AS-COMA within a few % of CC-NUMA even at 90%."""
        assert rel("em3d", "ASCOMA", 0.9, em3d_baseline) < 1.08
        assert rel("radix", "ASCOMA", 0.9, radix_baseline) < 1.08

    @pytest.mark.parametrize("app", ["em3d", "radix"])
    def test_ascoma_beats_other_hybrids_at_high_pressure(self, app):
        base = run_app(app, "CCNUMA", 0.5, scale=SCALE).aggregate().total_cycles()
        ascoma = rel(app, "ASCOMA", 0.9, base)
        rnuma = rel(app, "RNUMA", 0.9, base)
        vcnuma = rel(app, "VCNUMA", 0.9, base)
        assert ascoma <= vcnuma <= rnuma

    def test_ascoma_never_force_evicts(self):
        for pressure in (0.1, 0.9):
            run = run_app("em3d", "ASCOMA", pressure, scale=SCALE)
            assert run.aggregate().forced_evictions == 0

    def test_ascoma_relocates_less_than_rnuma_when_thrashing(self):
        ascoma = run_app("radix", "ASCOMA", 0.9, scale=SCALE)
        rnuma = run_app("radix", "RNUMA", 0.9, scale=SCALE)
        assert ascoma.aggregate().relocations < rnuma.aggregate().relocations

    def test_ascoma_backoff_engages(self):
        run = run_app("em3d", "ASCOMA", 0.9, scale=SCALE)
        assert run.aggregate().daemon_thrash > 0

    def test_rnuma_kernel_overhead_exceeds_ascoma(self):
        rnuma = run_app("em3d", "RNUMA", 0.9, scale=SCALE)
        ascoma = run_app("em3d", "ASCOMA", 0.9, scale=SCALE)
        assert rnuma.kernel_overhead_fraction() > \
            ascoma.kernel_overhead_fraction()


class TestSecondGroupApps:
    """fft / ocean / lu: 'minimal efforts to avoid thrashing suffice'."""

    def test_fft_hybrids_track_ccnuma(self):
        base = run_app("fft", "CCNUMA", 0.5, scale=SCALE).aggregate().total_cycles()
        for arch in ("RNUMA", "VCNUMA", "ASCOMA"):
            assert 0.8 < rel("fft", arch, 0.9, base) < 1.1

    def test_ocean_all_architectures_close(self):
        base = run_app("ocean", "CCNUMA", 0.5, scale=SCALE).aggregate().total_cycles()
        for arch in ("RNUMA", "VCNUMA", "ASCOMA"):
            assert 0.85 < rel("ocean", arch, 0.7, base) < 1.1

    def test_lu_hybrids_beat_ccnuma_at_all_pressures(self):
        base = run_app("lu", "CCNUMA", 0.5, scale=SCALE).aggregate().total_cycles()
        for pressure in (0.1, 0.7):
            assert rel("lu", "ASCOMA", pressure, base) < 0.9
            # R-NUMA's relocation lag eats part of the win at this small
            # scale; it must still roughly break even with CC-NUMA.
            assert rel("lu", "RNUMA", pressure, base) < 1.05

    def test_fft_rac_absorbs_remote_traffic(self):
        run = run_app("fft", "CCNUMA", 0.5, scale=SCALE)
        agg = run.aggregate()
        assert agg.RAC > agg.CONF_CAPC  # paper: the RAC plays a major role


class TestMissClassInvariants:
    def test_ccnuma_has_no_pagecache_hits(self):
        run = run_app("em3d", "CCNUMA", 0.5, scale=SCALE)
        assert run.aggregate().SCOMA == 0

    def test_scoma_has_no_rac_hits_or_remote_conflicts(self):
        run = run_app("em3d", "SCOMA", 0.1, scale=SCALE)
        agg = run.aggregate()
        assert agg.RAC == 0
        assert agg.CONF_CAPC == 0  # every conflict is absorbed locally

    def test_miss_totals_consistent_across_archs(self):
        """Shared references don't change with architecture, so total
        classified misses stay within a few % of one another (they vary
        only through remap-induced cold misses and L1 hit differences)."""
        runs = [run_app("fft", arch, 0.5, scale=SCALE)
                for arch in ("CCNUMA", "ASCOMA")]
        a, b = (r.aggregate().shared_misses() for r in runs)
        assert abs(a - b) / a < 0.1

    def test_induced_cold_only_with_remapping(self):
        ccnuma = run_app("em3d", "CCNUMA", 0.5, scale=SCALE)
        # Writes cause coherence invalidations that also surface as
        # non-essential cold misses, so compare against a remapping arch.
        rnuma = run_app("em3d", "RNUMA", 0.9, scale=SCALE)
        assert rnuma.aggregate().induced_cold > ccnuma.aggregate().induced_cold


class TestSyncAndBreakdown:
    def test_barrier_sync_present(self):
        run = run_app("em3d", "CCNUMA", 0.5, scale=SCALE)
        assert run.aggregate().SYNC > 0

    def test_time_buckets_sum_to_total(self):
        run = run_app("em3d", "ASCOMA", 0.7, scale=SCALE)
        agg = run.aggregate()
        assert agg.total_cycles() == sum(agg.time_breakdown().values())

    def test_execution_time_bounded_by_aggregate(self):
        run = run_app("em3d", "ASCOMA", 0.7, scale=SCALE)
        assert run.execution_time() <= run.aggregate().total_cycles()
        assert run.execution_time() >= run.aggregate().total_cycles() / run.n_nodes
