"""Integration tests for the replay engine at microbenchmark scale."""

import pytest

from repro.core import (ASCOMAPolicy, CCNUMAPolicy, RNUMAPolicy, SCOMAPolicy,
                        make_policy)
from repro.kernel.vm import PageMode
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine, simulate
from repro.sim.trace import TraceBuilder, WorkloadTraces

LPP = 128  # lines per page at default geometry


def cfg(n_nodes=2, pressure=0.5, contention=False):
    return SystemConfig(n_nodes=n_nodes, memory_pressure=pressure,
                        model_contention=contention)


def two_node_workload(node1_lines, home_pages=2, prologue=True,
                      node1_extra=None):
    """Node 0 homes pages [0, home_pages); node 1 homes the next ones.
    After the first barrier node 1 replays *node1_lines*."""
    b0 = TraceBuilder()
    if prologue:
        for page in range(home_pages):
            b0.read(page * LPP)
    b0.barrier(0)
    b0.compute(1)
    b0.barrier(1)

    b1 = TraceBuilder()
    if prologue:
        for page in range(home_pages, 2 * home_pages):
            b1.read(page * LPP)
    b1.barrier(0)
    for line in node1_lines:
        b1.read(line)
    if node1_extra:
        node1_extra(b1)
    b1.barrier(1)
    return WorkloadTraces("micro", [b0.build(), b1.build()],
                          home_pages_per_node=home_pages,
                          total_shared_pages=2 * home_pages)


class TestFirstTouch:
    def test_homes_assigned_by_first_touch(self):
        wl = two_node_workload([])
        engine = Engine(wl, CCNUMAPolicy(), cfg())
        engine.run()
        assert engine.machine.allocator.home[0] == 0
        assert engine.machine.allocator.home[2] == 1

    def test_home_pages_mapped_home(self):
        wl = two_node_workload([])
        engine = Engine(wl, CCNUMAPolicy(), cfg())
        engine.run()
        assert engine.machine.nodes[0].page_table.mode_of(0) == PageMode.HOME

    def test_faults_charged_k_base(self):
        wl = two_node_workload([])
        result = simulate(wl, CCNUMAPolicy(), cfg())
        kernel = cfg().kernel
        assert result.node_stats[0].K_BASE == 2 * kernel.page_fault
        assert result.node_stats[0].page_faults == 2


class TestCCNUMAPath:
    def test_remote_miss_classified_cold_then_conf(self):
        # Line 0 twice with a conflicting line in between (same L1 set,
        # 256 sets apart) forces a refetch of chunk 0.
        wl = two_node_workload([0, 256 * 2, 0])
        result = simulate(wl, CCNUMAPolicy(), cfg())
        s = result.node_stats[1]
        assert s.COLD == 2        # line 0 first touch + line 512 first touch
        assert s.CONF_CAPC == 1   # line 0 refetched
        assert s.induced_cold == 0

    def test_rac_hit_within_chunk(self):
        wl = two_node_workload([0, 1])  # same 4-line chunk
        result = simulate(wl, CCNUMAPolicy(), cfg())
        s = result.node_stats[1]
        assert s.COLD == 1
        assert s.RAC == 1

    def test_l1_hit_on_repeat(self):
        wl = two_node_workload([0, 0, 0])
        result = simulate(wl, CCNUMAPolicy(), cfg())
        s = result.node_stats[1]
        assert s.l1_hits == 2
        assert s.COLD == 1

    def test_remote_latency_magnitude(self):
        wl = two_node_workload([0])
        result = simulate(wl, CCNUMAPolicy(), cfg())
        s = result.node_stats[1]
        # One remote miss at ~180 cycles (plus home-page prologue misses).
        assert s.U_SH_MEM >= 180

    def test_home_access_classified_home(self):
        wl = two_node_workload([])
        result = simulate(wl, CCNUMAPolicy(), cfg())
        assert result.node_stats[0].HOME == 2


class TestSCOMAPath:
    def test_remote_pages_mapped_scoma(self):
        wl = two_node_workload([0])
        engine = Engine(wl, SCOMAPolicy(), cfg())
        engine.run()
        assert engine.machine.nodes[1].page_table.mode_of(0) == PageMode.SCOMA

    def test_chunk_valid_after_fetch_gives_local_hits(self):
        # Lines 0 and 1 share chunk 0: second access is a page-cache hit
        # (the whole 128-byte chunk was fetched).
        wl = two_node_workload([0, 1, 2, 3])
        result = simulate(wl, SCOMAPolicy(), cfg())
        s = result.node_stats[1]
        assert s.COLD == 1
        assert s.SCOMA == 3

    def test_forced_eviction_when_pool_dry(self):
        # Pressure ~1: no cache frames; S-COMA must evict per page.
        pressure_cfg = cfg(pressure=0.999)
        lines = [0, LPP, 0]  # page0, page1, page0 again
        wl = two_node_workload(lines)
        result = simulate(wl, SCOMAPolicy(), pressure_cfg)
        s = result.node_stats[1]
        assert s.forced_evictions >= 2
        assert s.K_OVERHD > 0
        assert s.page_faults >= 4  # re-faults after eviction

    def test_eviction_induces_cold_misses(self):
        pressure_cfg = cfg(pressure=0.999)
        wl = two_node_workload([0, LPP, 0])
        result = simulate(wl, SCOMAPolicy(), pressure_cfg)
        assert result.node_stats[1].induced_cold >= 1


class TestRNUMARelocation:
    def test_relocation_at_threshold(self):
        # Refetch chunk 0 repeatedly by alternating conflicting lines.
        lines = []
        for _ in range(6):
            lines += [0, 512]
        wl = two_node_workload(lines)
        result = simulate(wl, RNUMAPolicy(threshold=4), cfg())
        s = result.node_stats[1]
        assert s.relocations >= 1

    def test_no_relocation_below_threshold(self):
        wl = two_node_workload([0, 512, 0])
        result = simulate(wl, RNUMAPolicy(threshold=50), cfg())
        assert result.node_stats[1].relocations == 0

    def test_page_cache_hits_after_relocation(self):
        lines = []
        for _ in range(8):
            lines += [0, 512]
        wl = two_node_workload(lines)
        result = simulate(wl, RNUMAPolicy(threshold=4), cfg())
        assert result.node_stats[1].SCOMA > 0


class TestASCOMAPath:
    def test_scoma_first_at_low_pressure(self):
        wl = two_node_workload([0])
        engine = Engine(wl, ASCOMAPolicy(), cfg(pressure=0.1))
        engine.run()
        assert engine.machine.nodes[1].page_table.mode_of(0) == PageMode.SCOMA
        assert engine.machine.nodes[1].stats.relocations == 0

    def test_ccnuma_fallback_when_pool_dry(self):
        pressure_cfg = cfg(pressure=0.999)
        wl = two_node_workload([0])
        engine = Engine(wl, ASCOMAPolicy(), pressure_cfg)
        engine.run()
        assert engine.machine.nodes[1].page_table.mode_of(0) == PageMode.CCNUMA

    def test_no_forced_evictions_ever(self):
        pressure_cfg = cfg(pressure=0.999)
        lines = []
        for rep in range(10):
            lines += [0, LPP, 512]
        wl = two_node_workload(lines)
        result = simulate(wl, ASCOMAPolicy(threshold=2, increment=2),
                          pressure_cfg)
        assert result.node_stats[1].forced_evictions == 0


class TestAccounting:
    def test_compute_and_local_buckets(self):
        b0 = TraceBuilder()
        b0.compute(100)
        b0.local(40)
        b0.barrier(0)
        b1 = TraceBuilder()
        b1.barrier(0)
        wl = WorkloadTraces("acct", [b0.build(), b1.build()], 1, 2)
        result = simulate(wl, CCNUMAPolicy(), cfg())
        assert result.node_stats[0].U_INSTR == 100
        assert result.node_stats[0].U_LC_MEM == 40

    def test_barrier_sync_charged_to_early_arriver(self):
        b0 = TraceBuilder()
        b0.barrier(0)
        b1 = TraceBuilder()
        b1.compute(1000)
        b1.barrier(0)
        wl = WorkloadTraces("sync", [b0.build(), b1.build()], 1, 2)
        result = simulate(wl, CCNUMAPolicy(), cfg())
        assert result.node_stats[0].SYNC == 1000
        assert result.node_stats[1].SYNC == 0

    def test_clocks_equal_after_barrier(self):
        b0 = TraceBuilder()
        b0.compute(10)
        b0.barrier(0)
        b0.compute(5)
        b1 = TraceBuilder()
        b1.compute(500)
        b1.barrier(0)
        b1.compute(5)
        wl = WorkloadTraces("sync2", [b0.build(), b1.build()], 1, 2)
        result = simulate(wl, CCNUMAPolicy(), cfg())
        assert result.node_stats[0].total_cycles() == \
            result.node_stats[1].total_cycles()

    def test_mismatched_barrier_ids_detected(self):
        b0 = TraceBuilder()
        b0.barrier(0)
        b1 = TraceBuilder()
        b1.barrier(1)
        wl = WorkloadTraces("bad", [b0.build(), b1.build()], 1, 2)
        with pytest.raises(RuntimeError, match="barrier mismatch"):
            simulate(wl, CCNUMAPolicy(), cfg())


class TestWriteCoherence:
    def test_write_to_shared_chunk_upgrades(self):
        def writes(b):
            b.write(0)
        wl = two_node_workload([0], node1_extra=writes)
        result = simulate(wl, CCNUMAPolicy(), cfg())
        # Read fetched shared, the write (an L1 hit) required an upgrade.
        assert result.node_stats[1].upgrades == 1

    def test_remote_write_invalidates_sharer_copy(self):
        # Node 1 reads node 0's line; node 0 then writes it; node 1's
        # re-read must go remote again (coherence miss).
        b0 = TraceBuilder()
        b0.read(0)
        b0.barrier(0)
        b0.barrier(1)
        b0.write(0)
        b0.barrier(2)
        b1 = TraceBuilder()
        b1.read(2 * LPP)
        b1.barrier(0)
        b1.read(0)
        b1.barrier(1)
        b1.barrier(2)
        b1.read(0)
        wl = WorkloadTraces("coh", [b0.build(), b1.build()], 2, 4)
        result = simulate(wl, CCNUMAPolicy(), cfg())
        s = result.node_stats[1]
        assert s.COLD + s.CONF_CAPC == 2  # both reads of line 0 went remote


class TestEngineValidation:
    def test_node_count_mismatch_rejected(self):
        wl = two_node_workload([])
        with pytest.raises(ValueError):
            Engine(wl, CCNUMAPolicy(), cfg(n_nodes=8))

    def test_bad_quantum_rejected(self):
        wl = two_node_workload([])
        with pytest.raises(ValueError):
            Engine(wl, CCNUMAPolicy(), cfg(), quantum=0)

    def test_default_config_from_workload(self):
        wl = two_node_workload([])
        engine = Engine(wl, CCNUMAPolicy())
        assert engine.config.n_nodes == 2


class TestDeterminism:
    def test_same_inputs_same_result(self):
        wl = two_node_workload([0, 1, 512, 0])
        a = simulate(wl, make_policy("ascoma", threshold=4), cfg())
        b = simulate(wl, make_policy("ascoma", threshold=4), cfg())
        assert a.aggregate().as_dict() == b.aggregate().as_dict()
